#include "control/exhaustive_allocator.hpp"

#include <chrono>
#include <cmath>
#include <optional>

#include "util/check.hpp"

namespace diffserve::control {

double estimated_latency(const AllocationInput& in, int b1, int b2) {
  const double q1 =
      littles_law_delay(in.light_queue_length, in.light_arrival_rate);
  const double q2 =
      littles_law_delay(in.heavy_queue_length, in.heavy_arrival_rate);
  return in.light.stage_latency(b1) + q1 + in.heavy.stage_latency(b2) + q2;
}

bool satisfies_constraints(const AllocationInput& in, int x1, int x2, int b1,
                           int b2, double deferral_fraction) {
  const double d = in.provisioned_demand();
  if (estimated_latency(in, b1, b2) > in.slo_seconds) return false;   // Eq. 1
  if (x1 * in.light.throughput(b1) * in.light_utilization_target <
      d - 1e-9)
    return false;                                                     // Eq. 2
  if (x2 * in.heavy.throughput(b2) * in.heavy_utilization_target <
      d * deferral_fraction - 1e-9)
    return false;                                                     // Eq. 3
  if (x1 + x2 > in.total_workers) return false;                       // Eq. 4
  return true;
}

namespace {

int ceil_workers(double demand, double per_worker_throughput) {
  if (demand <= 1e-12) return 0;
  DS_CHECK(per_worker_throughput > 0.0, "non-positive throughput");
  return static_cast<int>(std::ceil(demand / per_worker_throughput - 1e-9));
}

/// Throughput-maximal batch size whose stage latency still fits the SLO;
/// if none fits, the lowest-latency batch.
int best_throughput_batch(const StagePerfModel& stage, double slo) {
  int best = -1;
  double best_tp = -1.0;
  for (const int b : stage.batch_sizes()) {
    if (stage.stage_latency(b) > slo) continue;
    if (stage.throughput(b) > best_tp) {
      best_tp = stage.throughput(b);
      best = b;
    }
  }
  if (best > 0) return best;
  // Nothing fits: take the smallest batch (lowest latency).
  return stage.batch_sizes().front();
}

std::optional<AllocationDecision> enumerate(const AllocationInput& in) {
  const double d = in.provisioned_demand();
  AllocationDecision best;
  bool found = false;

  for (const int b1 : in.light.batch_sizes()) {
    for (const int b2 : in.heavy.batch_sizes()) {
      if (estimated_latency(in, b1, b2) > in.slo_seconds) continue;
      // x1 depends only on b1 (all demand passes the light stage).
      const int x1 = std::max(
          1, ceil_workers(d, in.light.throughput(b1) *
                                 in.light_utilization_target));
      if (x1 > in.total_workers) continue;
      // Scan thresholds descending — the first feasible one is maximal for
      // this (b1, b2).
      for (auto it = in.threshold_grid.rbegin();
           it != in.threshold_grid.rend(); ++it) {
        const int x2 =
            ceil_workers(d * it->fraction,
                         in.heavy.throughput(b2) *
                             in.heavy_utilization_target);
        if (x1 + x2 > in.total_workers) continue;
        const bool better =
            !found || it->threshold > best.threshold + 1e-12 ||
            (std::fabs(it->threshold - best.threshold) <= 1e-12 &&
             (x1 + x2 < best.light_workers + best.heavy_workers ||
              (x1 + x2 == best.light_workers + best.heavy_workers &&
               estimated_latency(in, b1, b2) <
                   estimated_latency(in, best.light_batch,
                                     best.heavy_batch))));
        if (better) {
          best.feasible = true;
          best.light_workers = x1;
          best.heavy_workers = x2;
          best.light_batch = b1;
          best.heavy_batch = b2;
          best.threshold = it->threshold;
          best.deferral_fraction = it->fraction;
          found = true;
        }
        break;  // lower thresholds for this (b1,b2) are dominated
      }
    }
  }
  if (!found) return std::nullopt;
  return best;
}

}  // namespace

AllocationInput relax_queue_estimates(const AllocationInput& in) {
  AllocationInput relaxed = in;
  relaxed.light_queue_length = 0.0;
  relaxed.heavy_queue_length = 0.0;
  return relaxed;
}

AllocationDecision overload_fallback(const AllocationInput& in) {
  // Overload: lowest threshold, throughput-maximal SLO-respecting batches,
  // and a worker split proportional to stage service demand. The drop
  // policy at the workers sheds what cannot be served.
  DS_REQUIRE(!in.threshold_grid.empty(), "empty threshold grid");
  const double d = in.provisioned_demand();
  const auto& lowest = in.threshold_grid.front();
  AllocationDecision out;
  out.feasible = false;
  // The two stages share the SLO budget (Eq. 1): pick the heavy batch
  // first (it dominates the budget), then the best light batch that fits
  // in what remains — otherwise a throughput-maximal light batch can eat
  // the whole budget and every cascade query gets dropped at dispatch.
  out.heavy_batch = best_throughput_batch(in.heavy, 0.75 * in.slo_seconds);
  const double remaining =
      in.slo_seconds - in.heavy.stage_latency(out.heavy_batch);
  out.light_batch = best_throughput_batch(in.light, remaining);
  const double t1 = in.light.throughput(out.light_batch);
  const double t2 = in.heavy.throughput(out.heavy_batch);
  const double light_need = d / std::max(t1, 1e-9);
  const double heavy_need = d * lowest.fraction / std::max(t2, 1e-9);
  const double total_need = std::max(light_need + heavy_need, 1e-9);
  int x1 = static_cast<int>(
      std::round(in.total_workers * light_need / total_need));
  x1 = std::min(std::max(x1, 1), in.total_workers);
  out.light_workers = x1;
  out.heavy_workers = in.total_workers - x1;
  out.threshold = lowest.threshold;
  out.deferral_fraction = lowest.fraction;
  return out;
}

AllocationDecision ExhaustiveAllocator::allocate(const AllocationInput& in) {
  const auto start = std::chrono::steady_clock::now();
  DS_REQUIRE(!in.threshold_grid.empty(), "empty threshold grid");

  // A transient queue backlog can make Eq. 1 unsatisfiable for every
  // configuration; that is a drain problem, not a provisioning one, so
  // retry capacity planning with the backlog terms dropped before
  // declaring overload.
  std::optional<AllocationDecision> best = enumerate(in);
  if (!best) best = enumerate(relax_queue_estimates(in));
  AllocationDecision out = best ? *best : overload_fallback(in);

  out.solve_time_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  return out;
}

}  // namespace diffserve::control
