// Branch-and-bound MILP solver over the two-phase simplex.
//
// Best-first search on the LP relaxation bound; branches on the integer
// variable whose relaxation value is most fractional. Suited to the small
// allocation MILPs DiffServe solves every control period (tens of binaries
// and integer counts — §3.3 reports ~10 ms with Gurobi; this solver is
// benchmarked against the same budget in bench/milp_overhead).
#pragma once

#include "milp/problem.hpp"
#include "milp/simplex.hpp"

namespace diffserve::milp {

struct MilpOptions {
  SimplexOptions lp;
  double integrality_tol = 1e-6;
  /// Stop when the best bound is within this absolute gap of the incumbent.
  double absolute_gap = 1e-9;
  int max_nodes = 200000;
};

struct MilpResult {
  Solution solution;
  int nodes_explored = 0;
  /// Best upper bound at termination (== objective when optimal).
  double best_bound = 0.0;
};

MilpResult solve_milp(const Problem& p, const MilpOptions& opts = {});

}  // namespace diffserve::milp
