#include "trace/rate_trace.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace diffserve::trace {

RateTrace::RateTrace(std::vector<double> per_second_qps)
    : qps_(std::move(per_second_qps)) {
  DS_REQUIRE(qps_.size() >= 2, "trace needs at least two samples");
  for (double q : qps_) DS_REQUIRE(q >= 0.0, "negative rate in trace");
}

RateTrace RateTrace::constant(double qps, double duration_seconds) {
  DS_REQUIRE(duration_seconds >= 1.0, "trace too short");
  const auto n = static_cast<std::size_t>(std::ceil(duration_seconds)) + 1;
  return RateTrace(std::vector<double>(n, qps));
}

RateTrace RateTrace::azure_like(double min_qps, double max_qps,
                                double duration_seconds, std::uint64_t seed) {
  DS_REQUIRE(max_qps >= min_qps && min_qps >= 0.0, "invalid rate range");
  DS_REQUIRE(duration_seconds >= 10.0, "trace too short for a diurnal shape");
  util::Rng rng(seed);
  const auto n = static_cast<std::size_t>(std::ceil(duration_seconds)) + 1;
  std::vector<double> q(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double u = static_cast<double>(i) / static_cast<double>(n - 1);
    // Diurnal base: one slow cycle peaking ~55% into the trace.
    const double diurnal = 0.5 - 0.5 * std::cos(2.0 * M_PI * (u * 0.9 + 0.05));
    // Sustained mid-trace peak (the Azure trace's lunch-hour bump).
    const double bump =
        std::exp(-std::pow((u - 0.55) / 0.16, 2.0)) * 0.65;
    // Short secondary bump early on.
    const double bump2 =
        std::exp(-std::pow((u - 0.22) / 0.06, 2.0)) * 0.18;
    q[i] = diurnal + bump + bump2;
  }
  // Smooth multiplicative noise (random walk in log space, mild).
  double walk = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    walk = 0.92 * walk + rng.normal(0.0, 0.025);
    q[i] *= std::exp(walk);
    q[i] = std::max(q[i], 0.0);
  }
  return RateTrace(std::move(q)).scaled_to(min_qps, max_qps);
}

RateTrace RateTrace::scaled_to(double new_min, double new_max) const {
  DS_REQUIRE(new_max >= new_min && new_min >= 0.0, "invalid target range");
  const double lo = min_qps();
  const double hi = max_qps();
  std::vector<double> q(qps_.size());
  if (hi == lo) {
    std::fill(q.begin(), q.end(), 0.5 * (new_min + new_max));
  } else {
    for (std::size_t i = 0; i < qps_.size(); ++i)
      q[i] = new_min + (qps_[i] - lo) / (hi - lo) * (new_max - new_min);
  }
  return RateTrace(std::move(q));
}

RateTrace RateTrace::scaled_by(double factor) const {
  DS_REQUIRE(factor >= 0.0, "negative scale factor");
  std::vector<double> q(qps_.size());
  for (std::size_t i = 0; i < qps_.size(); ++i) q[i] = qps_[i] * factor;
  return RateTrace(std::move(q));
}

double RateTrace::duration() const {
  return static_cast<double>(qps_.size() - 1);
}

double RateTrace::qps_at(double t) const {
  DS_REQUIRE(!qps_.empty(), "empty trace");
  if (t <= 0.0) return qps_.front();
  if (t >= duration()) return qps_.back();
  const auto lo = static_cast<std::size_t>(t);
  const double frac = t - static_cast<double>(lo);
  return qps_[lo] * (1.0 - frac) + qps_[lo + 1] * frac;
}

double RateTrace::min_qps() const {
  return *std::min_element(qps_.begin(), qps_.end());
}

double RateTrace::max_qps() const {
  return *std::max_element(qps_.begin(), qps_.end());
}

double RateTrace::mean_qps() const {
  double s = 0.0;
  for (double q : qps_) s += q;
  return s / static_cast<double>(qps_.size());
}

double RateTrace::total_queries() const {
  // Trapezoidal integral of the piecewise-linear rate.
  double s = 0.0;
  for (std::size_t i = 0; i + 1 < qps_.size(); ++i)
    s += 0.5 * (qps_[i] + qps_[i + 1]);
  return s;
}

void RateTrace::save(const std::string& path) const {
  std::ofstream out(path);
  DS_REQUIRE(out.good(), "cannot open trace file for writing: " + path);
  for (double q : qps_) out << q << "\n";
}

RateTrace RateTrace::load(const std::string& path) {
  std::ifstream in(path);
  DS_REQUIRE(in.good(), "cannot open trace file: " + path);
  std::vector<double> q;
  double v;
  while (in >> v) q.push_back(v);
  return RateTrace(std::move(q));
}

}  // namespace diffserve::trace
