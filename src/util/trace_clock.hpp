// Shared wall clock expressed in trace seconds.
//
// The threaded testbed replays traces in compressed wall time: a trace
// second lasts 1/time_scale wall seconds and every sleep shrinks
// accordingly (Appendix A.5's simulated execution). Latencies are recorded
// in trace seconds, so results are directly comparable with the
// discrete-event simulator.
#pragma once

#include <chrono>
#include <thread>

#include "util/check.hpp"

namespace diffserve::util {

class TraceClock {
 public:
  using WallClock = std::chrono::steady_clock;

  explicit TraceClock(double time_scale) : scale_(time_scale) {
    DS_REQUIRE(time_scale > 0.0, "time scale must be positive");
    start_ = WallClock::now();
  }

  double time_scale() const { return scale_; }

  /// Current trace time (seconds).
  double now() const {
    return std::chrono::duration<double>(WallClock::now() - start_).count() *
           scale_;
  }

  /// Wall-clock duration corresponding to `trace_seconds` (for cv waits).
  std::chrono::duration<double> wall_duration(double trace_seconds) const {
    return std::chrono::duration<double>(trace_seconds / scale_);
  }

  /// Sleep for `trace_seconds` of trace time.
  void sleep_for(double trace_seconds) const {
    if (trace_seconds <= 0.0) return;
    std::this_thread::sleep_for(wall_duration(trace_seconds));
  }

  /// Sleep until the given trace time.
  void sleep_until(double trace_time) const {
    const double delta = trace_time - now();
    if (delta > 0.0) sleep_for(delta);
  }

 private:
  double scale_;
  WallClock::time_point start_;
};

}  // namespace diffserve::util
