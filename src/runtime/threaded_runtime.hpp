// Threaded "testbed" runtime.
//
// The paper validates its simulator against a 16-GPU cluster testbed whose
// artifact also supports *simulated execution* of the diffusion models
// (sleeping for the profiled latency instead of running the GPU kernels,
// Appendix A.5). This module is that testbed: a ThreadedBackend — real
// timer and worker threads timed by the wall clock (util::TraceClock) —
// plugged under the same engine::CascadeEngine and control::Controller
// that drive the discrete-event simulator. Because routing, deferral,
// batching, reconfiguration, and metrics are the engine's single policy
// implementation, the §4.3 simulator-vs-testbed fidelity comparison
// (0.56% FID, 1.1% SLO difference in the paper) is reproduced by running
// the same trace through both backends and diffing the results.
//
// Hot-path design: every cross-thread hand-off is a lock-free ring
// (util/ring_buffer.hpp). Batch dispatch pushes onto a wait-free SPSC ring
// owned by the target executor (producers are serialized by the engine
// guard, so the single-producer contract holds); defer/cancel post
// messages to the timer thread's MPSC inbox, so arming or cancelling a
// batch timer never contends with the timer's own sleep bookkeeping; and
// offloaded control work (allocator solves) goes through an MPSC ring with
// a blocking overflow policy. Mutexes remain only in the parking protocol
// (condition-variable waits with capped timeouts) and in the engine guard
// itself — no data travels under them.
//
// ThreadedBackend is exported here (not hidden in the .cpp) so tests can
// assemble custom engines over real threads — e.g. the randomized
// cascade-chain invariant suite applies arbitrary plan sequences against
// arbitrary chain depths on this backend.
//
// `time_scale` compresses wall time: a trace second lasts 1/time_scale
// wall seconds and every sleep shrinks accordingly. Latencies are recorded
// in trace seconds, so results are directly comparable with the DES.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cache/approx_cache.hpp"
#include "control/allocator.hpp"
#include "core/environment.hpp"
#include "engine/backend.hpp"
#include "engine/plan.hpp"
#include "trace/arrivals.hpp"
#include "trace/prompt_mix.hpp"
#include "trace/rate_trace.hpp"
#include "util/mutex.hpp"
#include "util/ring_buffer.hpp"
#include "util/trace_clock.hpp"

namespace diffserve::runtime {

/// ExecutionBackend over real threads and the compressed wall clock: a
/// timer thread delivers deferred callbacks, one executor thread per
/// worker sleeps for each batch's profiled latency, a dedicated control
/// thread runs offloaded work (controller ticks with their allocator
/// solves) so a slow solve never delays timer delivery, and the guard is
/// a real mutex serializing all engine state. All job hand-offs between
/// those threads ride lock-free rings; see the header comment.
class ThreadedBackend final : public engine::ExecutionBackend {
 public:
  /// `pin_executors` pins each executor thread to a CPU (round-robin over
  /// the online set, Linux only) so a flood benchmark measures queue
  /// hand-off rather than scheduler migration.
  ThreadedBackend(const util::TraceClock& clock, int workers,
                  bool pin_executors = false);
  ~ThreadedBackend() override;

  void start();
  /// Joins all threads; in-flight batches (including follow-on batches
  /// they trigger) finish and deliver their completions first. Idempotent.
  void stop();

  double now() const override { return clock_.now(); }
  /// The engine guard crosses the ExecutionBackend seam as a
  /// std::unique_lock, which the thread-safety analysis cannot track
  /// (and the engine's state lives on the other side of a virtual call
  /// anyway) — TSan covers this path; see util/mutex.hpp.
  std::unique_lock<std::mutex> guard() override {
    return std::unique_lock<std::mutex>(mu_.native());
  }
  /// Lock-free: posts an arm message to the timer inbox.
  engine::TimerHandle defer(double delay_seconds,
                            std::function<void()> fn) override;
  /// Lock-free: posts a cancel message. Best-effort per the backend
  /// contract — a callback already extracted keeps running (the engine's
  /// timer-epoch protocol makes such firings no-ops). Always returns true.
  bool cancel(engine::TimerHandle h) override;
  /// Wait-free push onto the worker's SPSC job ring. Must be called under
  /// the engine guard (that serialization is what makes the producer side
  /// "single").
  void execute(int worker_id, double exec_seconds,
               std::function<void()> done) override;
  /// Enqueue `fn` on the control thread (never inline): long allocator
  /// solves run there while batch-launch timers keep firing. Dropped if
  /// the backend is stopping.
  void offload(std::function<void()> fn) override;

 private:
  struct TimerEntry {
    double at;
    std::uint64_t id;
  };
  struct TimerCompare {
    bool operator()(const TimerEntry& a, const TimerEntry& b) const {
      return a.at > b.at;  // min-heap on due time
    }
  };
  /// Arm (fn != nullptr) or cancel (fn == nullptr) message for the timer
  /// thread, which owns the heap and callback map privately.
  struct TimerMsg {
    std::uint64_t id = 0;
    double at = 0.0;
    std::function<void()> fn;
  };
  struct ExecJob {
    double due = 0.0;  ///< absolute trace time the batch finishes
    std::function<void()> done;
  };
  struct Executor {
    util::SpscRing<ExecJob> ring{8};
    /// True from just before a pop until the popped job's completion has
    /// been delivered; stop()'s quiesce reads it (with the ring) to tell
    /// "no work" from "work in flight".
    std::atomic<bool> busy{false};
    /// Parking only — no data travels under it (the ring and the atomics
    /// above are the shared state), so nothing is DS_GUARDED_BY it.
    util::Mutex park_mu;
    util::CondVar park_cv;
    std::thread thread;
  };

  void timer_main();
  void executor_main(Executor& ex, int index);
  void control_main();

  const util::TraceClock& clock_;
  const bool pin_executors_;
  util::Mutex mu_;  ///< the engine guard (handed out via guard())

  /// Timer plumbing: producers touch only inbox_/next_id_; the heap and
  /// callback map live on the timer thread's stack frame. The park
  /// mutexes guard no data (lost wakeups are bounded by the capped
  /// waits), so no members are DS_GUARDED_BY them.
  util::MpscRing<TimerMsg> timer_inbox_{1024, util::OverflowPolicy::kBlock};
  std::atomic<std::uint64_t> next_id_{1};
  util::Mutex timer_park_mu_;
  util::CondVar timer_park_cv_;
  std::thread timer_thread_;

  std::vector<std::unique_ptr<Executor>> executors_;

  /// Offloaded control work (see offload()).
  util::MpscRing<std::function<void()>> control_jobs_{
      64, util::OverflowPolicy::kBlock};
  util::Mutex control_park_mu_;
  util::CondVar control_park_cv_;
  std::thread control_thread_;
  /// True while the control thread is inside a job (raised before the
  /// pop); stop()'s quiesce waits on it like it does for the timer thread.
  std::atomic<bool> control_busy_{false};

  std::atomic<bool> stop_{false};
  /// True while the timer thread is inside a callback (raised at
  /// extraction); stop()'s quiesce waits on it so a mid-flight callback's
  /// batch dispatch is never discarded.
  std::atomic<bool> timer_busy_{false};
};

struct RuntimeConfig {
  int total_workers = 8;
  /// Negative = cascade default.
  double slo_seconds = -1.0;
  /// Wall-clock compression: 30 = a 300 s trace takes 10 s to replay.
  double time_scale = 30.0;
  double control_period = 5.0;       ///< trace seconds
  double heavy_reserve_factor = 1.25;
  double max_deferral_fraction = 0.55;
  double over_provision = 1.05;
  double model_load_delay = 1.0;     ///< trace seconds
  /// Batch timers are armed this much wall time early (scaled into trace
  /// seconds by time_scale) to absorb OS scheduling jitter.
  double launch_slack_wall_seconds = 0.004;
  std::uint64_t arrival_seed = 1;
  /// Pin executor threads to CPUs (Linux; no-op elsewhere).
  bool pin_executors = false;
  /// Forwarded to the metrics sink: false skips per-query terminal
  /// records (throughput-bench fast mode); aggregates stay exact.
  bool record_terminal_events = true;
  trace::ArrivalConfig arrivals;
  /// Forwarded into the engine config: the approximate prompt-reuse cache
  /// and the prompt popularity model (defaults keep both off).
  cache::CacheConfig cache;
  trace::PromptMixConfig prompt_mix;
  /// Per-class admission queues / drop policies / class-aware batching
  /// (defaults keep classes off — single-class behavior is byte-identical).
  engine::SloClassConfig slo_classes;
};

struct RuntimeResult {
  double overall_fid = 0.0;
  double violation_ratio = 0.0;
  double mean_latency = 0.0;   ///< trace seconds
  std::size_t submitted = 0;
  std::size_t completed = 0;
  std::size_t dropped = 0;
  double light_served_fraction = 0.0;
  /// Completed-query share per chain stage (size = chain depth).
  std::vector<double> stage_served_fraction;
  std::size_t reconfigurations = 0;
  /// Prompt-reuse cache probe ratios (0 when the cache is disabled).
  double cache_hit_ratio = 0.0;
  double cache_exact_hit_ratio = 0.0;
  /// Cache maintenance depth: mean LSH buckets probed per lookup (0 when
  /// unindexed) and lazy-eviction-heap compactions over the run.
  double cache_mean_probed_cells = 0.0;
  std::uint64_t cache_heap_compactions = 0;
  /// Per-SLO-class terminals (indexed by engine::QueryClass; with classes
  /// disabled the kStandard row carries everything).
  std::array<std::size_t, engine::kQueryClassCount> class_completed{};
  std::array<std::size_t, engine::kQueryClassCount> class_dropped{};
  std::array<double, engine::kQueryClassCount> class_violation_ratio{};
  std::array<double, engine::kQueryClassCount> class_mean_latency{};
};

/// Replay `trace` through the threaded runtime with the given allocation
/// policy. Blocks until the trace finishes and the pipeline drains. Works
/// for any chain depth the environment carries.
RuntimeResult run_threaded(const core::CascadeEnvironment& env,
                           control::Allocator& allocator,
                           const trace::RateTrace& trace,
                           const RuntimeConfig& cfg);

}  // namespace diffserve::runtime
