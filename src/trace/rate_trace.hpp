// Workload rate traces.
//
// The paper drives its system with the Microsoft Azure Functions trace,
// "scaled using shape-preserving transformations to match the capacity of
// our system" (§4.1), stored as trace_{A}to{B}qps.txt files (artifact
// appendix). This module provides: piecewise-linear rate traces, a
// synthetic Azure-like diurnal shape generator, the shape-preserving
// min/max rescaling, and the artifact's file format.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace diffserve::trace {

/// Query rate (QPS) as a function of time, represented by per-second
/// breakpoints with linear interpolation between them.
class RateTrace {
 public:
  RateTrace() = default;
  /// One rate sample per second, starting at t = 0.
  explicit RateTrace(std::vector<double> per_second_qps);

  static RateTrace constant(double qps, double duration_seconds);

  /// Synthetic Azure-Functions-like trace: a diurnal base wave compressed
  /// into `duration`, a mid-trace peak, and multiplicative noise — then
  /// rescaled to [min_qps, max_qps]. Matches the paper's
  /// "trace_{A}to{B}qps" family in shape (slow rise, sustained peak around
  /// 40-70% of the duration, decline).
  static RateTrace azure_like(double min_qps, double max_qps,
                              double duration_seconds, std::uint64_t seed);

  /// Shape-preserving affine rescale so min -> new_min and max -> new_max.
  RateTrace scaled_to(double new_min, double new_max) const;
  /// Uniformly scale rates by a factor.
  RateTrace scaled_by(double factor) const;

  double duration() const;
  double qps_at(double t) const;
  double min_qps() const;
  double max_qps() const;
  double mean_qps() const;
  /// Expected number of queries over the whole trace (integral of rate).
  double total_queries() const;

  const std::vector<double>& samples() const { return qps_; }

  /// Artifact-format I/O: one QPS value per line.
  void save(const std::string& path) const;
  static RateTrace load(const std::string& path);

 private:
  std::vector<double> qps_;
};

}  // namespace diffserve::trace
