#include "serving/system.hpp"

namespace diffserve::serving {

ServingSystem::ServingSystem(
    sim::Simulation& sim, const quality::Workload& workload,
    const models::ModelRepository& repo, const models::CascadeSpec& cascade,
    std::vector<const discriminator::Discriminator*> discs,
    const quality::FidScorer& scorer, SystemConfig cfg)
    : sim_(sim),
      backend_(sim),
      engine_(backend_, workload, repo, cascade, std::move(discs), scorer,
              cfg) {}

ServingSystem::ServingSystem(sim::Simulation& sim,
                             const quality::Workload& workload,
                             const models::ModelRepository& repo,
                             const models::CascadeSpec& cascade,
                             const discriminator::Discriminator* disc,
                             const quality::FidScorer& scorer,
                             SystemConfig cfg)
    : sim_(sim),
      backend_(sim),
      engine_(backend_, workload, repo, cascade, disc, scorer, cfg) {}

void ServingSystem::inject_arrivals(const std::vector<double>& times) {
  // The arrival count bounds the terminal-event count; pre-sizing the
  // sink's record log keeps it from reallocating mid-run.
  engine_.sink_reserve(times.size());
  for (const double t : times)
    sim_.schedule_at(t, [this] { engine_.submit_next(); });
}

}  // namespace diffserve::serving
