// Query lifecycle types shared across the serving data path. These are
// backend-agnostic: the same Query travels through the discrete-event
// simulator and the threaded testbed.
//
// A Query carries its admission-time cache verdict (hit level, donor,
// step fraction, per-stage level mask) through the chain;
// `step_fraction_at(stage)` is how batch execution scales per-stage work
// for approx hits. Determinism requirement: everything here is plain
// data derived from the admission decision — no field may depend on
// wall-clock time or backend identity, so a query's journey is
// replayable on any backend.
#pragma once

#include <cstdint>
#include <vector>

#include "cache/approx_cache.hpp"
#include "quality/workload.hpp"

namespace diffserve::engine {

/// Service class of a query — the tenant tier it arrived under. The
/// numeric order doubles as batch-fill priority (interactive first) and
/// indexes every per-class array in the system (queues, metrics, demand
/// vectors), so the three values are a stable wire/ABI contract.
enum class QueryClass : std::uint8_t {
  kInteractive = 0,  ///< tight SLO, drop-oldest under overload
  kStandard = 1,     ///< the paper's SLO; admission backpressure when full
  kBatch = 2,        ///< background: huge deadline, never deadline-dropped
};
inline constexpr std::size_t kQueryClassCount = 3;

inline const char* to_string(QueryClass c) {
  switch (c) {
    case QueryClass::kInteractive: return "interactive";
    case QueryClass::kStandard: return "standard";
    case QueryClass::kBatch: return "batch";
  }
  return "?";
}

/// One text-to-image request travelling through the system.
struct Query {
  std::uint64_t seq = 0;               ///< unique arrival sequence number
  quality::QueryId prompt_id = 0;      ///< index into the evaluation workload
  double arrival_time = 0.0;
  double deadline = 0.0;               ///< arrival_time + SLO * class multiplier
  /// Service class. kStandard when SLO classes are disabled (and for
  /// queries decoded from pre-class wire frames).
  QueryClass query_class = QueryClass::kStandard;

  /// Cascade stage the query currently occupies (0 = lightest).
  std::size_t stage = 0;
  /// Latest completion time for the *current stage* that still leaves room
  /// for the remaining chain (set by the engine on each hop).
  double stage_deadline = 0.0;

  /// Latest discriminator confidence of this query's newest image (set
  /// after each non-terminal stage; -1 before any stage ran).
  double confidence = -1.0;
  bool deferred = false;  ///< deferred down the chain at least once
  /// Number of confidence-based deferrals so far (the query's deferral
  /// history; in cascade mode a query can never be served by a stage
  /// earlier than this).
  int deferrals = 0;
  /// Quality tier of the best image produced so far (-1 = none). Lets the
  /// engine serve a deferred query best-effort when the rest of the chain
  /// has no capacity.
  int image_tier = -1;
  /// Chain stage that produced that image (-1 = none). May lag `stage`
  /// when a deferred query is completed best-effort at an unstaffed stage.
  int image_stage = -1;

  // --- prompt-reuse cache metadata (kMiss defaults when the cache is
  // --- disabled or the probe found nothing close enough) ------------------
  /// Admission-probe outcome. An exact hit never enters a stage pool; an
  /// approx hit runs the chain with `cache_step_fraction` of its steps.
  cache::HitLevel cache_hit = cache::HitLevel::kMiss;
  /// Prompt whose cached image seeds this query (valid on any hit).
  quality::QueryId cache_donor = 0;
  /// Style distance to the donor's key (drives the reuse-noise quality
  /// perturbation of the served image).
  double cache_distance = 0.0;
  /// Fraction of diffusion steps each serving stage still executes
  /// (1.0 = full generation).
  double cache_step_fraction = 1.0;
  /// Bit s set when the donor has a cached result (intermediate latent or
  /// terminal image) produced at chain stage s — the stages this query can
  /// resume at `cache_step_fraction` instead of running full steps. The
  /// all-ones default makes every stage resumable (the terminal-image-only
  /// behaviour, where the step fraction applies chain-wide).
  std::uint32_t cache_level_mask = 0xFFFFFFFFu;
  /// Depth of the donor stage the reuse resumes from, normalized to [0, 1]
  /// over the chain (0 when latent levels are disabled) — scales the reuse
  /// noise: a deeper resumption inherits more donor-specific detail.
  double cache_resume_depth = 0.0;

  /// Step fraction this query executes at `stage`: the cached fraction at
  /// stages the donor has a result for, full steps elsewhere.
  double step_fraction_at(std::size_t stage) const {
    if (stage < 32 && ((cache_level_mask >> stage) & 1u) == 0) return 1.0;
    return cache_step_fraction;
  }
};

/// Terminal record delivered to the sink.
struct Completion {
  Query query;
  double completion_time = 0.0;
  bool dropped = false;                ///< preemptively dropped, no image
  int served_tier = -1;                ///< quality tier that produced the image
  std::vector<double> image_feature;   ///< empty when dropped
};

}  // namespace diffserve::engine
