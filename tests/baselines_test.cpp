// Tests for the baseline serving policies: Clipper-Light/Heavy, Proteus,
// DiffServe-Static.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/baselines.hpp"
#include "control/exhaustive_allocator.hpp"
#include "models/model_repository.hpp"

namespace diffserve::baselines {
namespace {

using control::AllocationInput;
using control::StagePerfModel;

AllocationInput cascade1_input(double demand, int workers = 16,
                               double slo = 5.0) {
  AllocationInput in;
  in.demand_qps = demand;
  in.total_workers = workers;
  in.slo_seconds = slo;
  const auto repo = models::ModelRepository::with_paper_catalog();
  const auto disc = repo.model(models::catalog::kEfficientNet).latency;
  in.light() =
      StagePerfModel(repo.model(models::catalog::kSdTurbo).latency, &disc);
  in.heavy() =
      StagePerfModel(repo.model(models::catalog::kSdV15).latency, nullptr);
  for (int k = 0; k <= 50; ++k) {
    const double f = 0.65 * k / 50.0;
    in.threshold_grid().push_back({std::pow(f, 2.0 / 3.0), f});
  }
  return in;
}

TEST(ClipperLight, AllWorkersLightDirectMode) {
  ClipperAllocator alloc(ClipperAllocator::Variant::kLight);
  const auto d = alloc.allocate(cascade1_input(10.0));
  EXPECT_TRUE(d.direct_mode);
  EXPECT_EQ(d.p_heavy, 0.0);
  EXPECT_EQ(d.light_workers(), 16);
  EXPECT_EQ(d.heavy_workers(), 0);
  EXPECT_EQ(alloc.name(), "clipper-light");
}

TEST(ClipperHeavy, AllWorkersHeavyDirectMode) {
  ClipperAllocator alloc(ClipperAllocator::Variant::kHeavy);
  const auto d = alloc.allocate(cascade1_input(10.0));
  EXPECT_TRUE(d.direct_mode);
  EXPECT_EQ(d.p_heavy, 1.0);
  EXPECT_EQ(d.heavy_workers(), 16);
  EXPECT_EQ(alloc.name(), "clipper-heavy");
}

TEST(Clipper, AimdBatchRespondsToViolations) {
  ClipperAllocator alloc(ClipperAllocator::Variant::kLight);
  auto in = cascade1_input(10.0);
  in.recent_violation_ratio = 0.0;
  int batch_after_calm = 1;
  for (int i = 0; i < 3; ++i)
    batch_after_calm = alloc.allocate(in).light_batch();
  EXPECT_GT(batch_after_calm, 1);
  in.recent_violation_ratio = 0.5;
  const auto d = alloc.allocate(in);
  EXPECT_LT(d.light_batch(), batch_after_calm);
}

TEST(Clipper, BatchNeverExceedsSloLatency) {
  ClipperAllocator alloc(ClipperAllocator::Variant::kHeavy);
  auto in = cascade1_input(10.0);
  in.recent_violation_ratio = 0.0;
  control::AllocationDecision d;
  for (int i = 0; i < 12; ++i) d = alloc.allocate(in);
  EXPECT_LE(in.heavy().stage_latency(d.heavy_batch()), in.slo_seconds);
}

TEST(Proteus, UsesAllWorkersAndRandomRouting) {
  ProteusAllocator alloc;
  const auto d = alloc.allocate(cascade1_input(10.0));
  ASSERT_TRUE(d.feasible);
  EXPECT_TRUE(d.direct_mode);
  EXPECT_EQ(d.light_workers() + d.heavy_workers(), 16);
  EXPECT_GE(d.p_heavy, 0.0);
  EXPECT_LE(d.p_heavy, 1.0);
}

TEST(Proteus, MoreLoadMeansLessHeavy) {
  ProteusAllocator alloc;
  const auto lo = alloc.allocate(cascade1_input(4.0));
  const auto hi = alloc.allocate(cascade1_input(28.0));
  ASSERT_TRUE(lo.feasible);
  ASSERT_TRUE(hi.feasible);
  EXPECT_GE(lo.p_heavy, hi.p_heavy);
}

TEST(Proteus, CapacityCoversDemand) {
  ProteusAllocator alloc;
  const auto in = cascade1_input(20.0);
  const auto d = alloc.allocate(in);
  ASSERT_TRUE(d.feasible);
  const double cap = d.light_workers() * in.light().throughput(d.light_batch()) +
                     d.heavy_workers() * in.heavy().throughput(d.heavy_batch());
  EXPECT_GE(cap, in.provisioned_demand() - 1e-9);
}

TEST(Proteus, OverloadServesLightBestEffort) {
  ProteusAllocator alloc;
  const auto d = alloc.allocate(cascade1_input(1000.0, 2));
  EXPECT_FALSE(d.feasible);
  EXPECT_EQ(d.p_heavy, 0.0);
  EXPECT_EQ(d.light_workers(), 2);
}

TEST(DiffServeStatic, SolvesOnceAndStaysFixed) {
  DiffServeStaticAllocator alloc(/*peak=*/20.0, /*threshold=*/0.3);
  const auto d1 = alloc.allocate(cascade1_input(5.0));
  // Different live demand: identical plan (static provisioning).
  const auto d2 = alloc.allocate(cascade1_input(18.0));
  EXPECT_EQ(d1.light_workers(), d2.light_workers());
  EXPECT_EQ(d1.heavy_workers(), d2.heavy_workers());
  EXPECT_EQ(d1.threshold(), d2.threshold());
  EXPECT_FALSE(d1.direct_mode);  // query-aware cascade
}

TEST(DiffServeStatic, ProvisionsForPeakNotCurrentDemand) {
  DiffServeStaticAllocator alloc(/*peak=*/20.0, /*threshold=*/0.2);
  // First call sees a tiny live demand, but sizing must match the peak.
  const auto d = alloc.allocate(cascade1_input(1.0));
  control::ExhaustiveAllocator oracle;
  auto peak_in = cascade1_input(20.0);
  // Pin grid to the nearest point like the static allocator does.
  EXPECT_GT(d.heavy_workers(), 2);  // clearly sized for 20 QPS, not 1 QPS
  (void)oracle;
  (void)peak_in;
}

TEST(DiffServeStatic, RejectsBadArguments) {
  EXPECT_THROW(DiffServeStaticAllocator(0.0, 0.5), std::invalid_argument);
  EXPECT_THROW(DiffServeStaticAllocator(10.0, 1.5), std::invalid_argument);
}

}  // namespace
}  // namespace diffserve::baselines
