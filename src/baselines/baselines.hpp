// Baseline serving systems (§4.1, Table 1).
//
//   Approach          Allocation   Query-aware
//   Clipper-Light     Static       No    — all queries to the light model
//   Clipper-Heavy     Static       No    — all queries to the heavy model
//   Proteus           Dynamic      No    — model mix adapts to load, but
//                                          routing is random
//   DiffServe-Static  Static       Yes   — cascade with a fixed threshold,
//                                          provisioned for peak demand
//   DiffServe         Dynamic      Yes   — (src/control)
//
// All are implemented as Allocator strategies so the same controller,
// serving system, and metrics pipeline host every approach — differences
// in results come only from policy, exactly as in the paper's testbed.
#pragma once

#include <memory>

#include "control/allocator.hpp"

namespace diffserve::baselines {

/// Clipper (Crankshaw et al., NSDI'17): a static, query-agnostic server.
/// All workers host one model; batch sizes follow Clipper's AIMD policy on
/// SLO feedback.
class ClipperAllocator : public control::Allocator {
 public:
  enum class Variant { kLight, kHeavy };
  explicit ClipperAllocator(Variant variant);

  control::AllocationDecision allocate(
      const control::AllocationInput& input) override;
  std::string name() const override;

 private:
  Variant variant_;
  int batch_ = 1;
  double violation_trigger_ = 0.05;
};

/// Proteus (Ahmad et al., ASPLOS'24): dynamically sizes the light/heavy
/// pools to the estimated demand, maximizing the fraction served by the
/// higher-accuracy model — but routes queries to variants *randomly*,
/// ignoring content ("randomly assigns incoming queries to model
/// variants").
class ProteusAllocator : public control::Allocator {
 public:
  control::AllocationDecision allocate(
      const control::AllocationInput& input) override;
  std::string name() const override { return "proteus"; }
};

/// DiffServe-Static: query-aware cascade with a fixed confidence threshold,
/// provisioned once for peak demand (the "production practice" baseline).
/// The first allocate() call solves for `peak_demand_qps` and the fixed
/// threshold; every later call returns the same plan.
class DiffServeStaticAllocator : public control::Allocator {
 public:
  DiffServeStaticAllocator(double peak_demand_qps, double fixed_threshold);

  control::AllocationDecision allocate(
      const control::AllocationInput& input) override;
  std::string name() const override { return "diffserve-static"; }

 private:
  double peak_demand_qps_;
  double fixed_threshold_;
  bool solved_ = false;
  control::AllocationDecision plan_;
};

}  // namespace diffserve::baselines
