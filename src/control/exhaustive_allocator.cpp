#include "control/exhaustive_allocator.hpp"

#include <chrono>
#include <cmath>
#include <optional>

#include "util/check.hpp"

namespace diffserve::control {

double estimated_latency(const AllocationInput& in,
                         const std::vector<int>& batches) {
  DS_REQUIRE(batches.size() == in.stage_count(),
             "one batch size per chain stage");
  double total = 0.0;
  for (std::size_t s = 0; s < in.stages.size(); ++s) {
    total += in.stages[s].perf.stage_latency(batches[s]);
    total += littles_law_delay(in.stages[s].queue_length,
                               in.stages[s].arrival_rate);
  }
  return total;
}

bool satisfies_constraints(const AllocationInput& in,
                           const std::vector<int>& workers,
                           const std::vector<int>& batches,
                           const std::vector<double>& entry_fractions) {
  const std::size_t n = in.stage_count();
  DS_REQUIRE(workers.size() == n && batches.size() == n &&
                 entry_fractions.size() == n,
             "per-stage vectors must match the chain length");
  const double d = in.provisioned_demand();
  if (estimated_latency(in, batches) > in.slo_seconds) return false;  // Eq. 1
  int total = 0;
  for (std::size_t s = 0; s < n; ++s) {
    // Eq. 2 (s == 0) / Eq. 3 (s > 0): stage throughput with utilization
    // headroom covers the demand reaching it.
    if (workers[s] * in.stages[s].perf.throughput(batches[s]) *
            in.stages[s].utilization_target <
        d * entry_fractions[s] - 1e-9)
      return false;
    total += workers[s];
  }
  if (total > in.total_workers) return false;                         // Eq. 4
  return true;
}

namespace {

int ceil_workers(double demand, double per_worker_throughput) {
  if (demand <= 1e-12) return 0;
  DS_CHECK(per_worker_throughput > 0.0, "non-positive throughput");
  return static_cast<int>(std::ceil(demand / per_worker_throughput - 1e-9));
}

/// Throughput-maximal batch size whose stage latency still fits the SLO;
/// if none fits, the lowest-latency batch.
int best_throughput_batch(const StagePerfModel& stage, double slo) {
  int best = -1;
  double best_tp = -1.0;
  for (const int b : stage.batch_sizes()) {
    if (stage.stage_latency(b) > slo) continue;
    if (stage.throughput(b) > best_tp) {
      best_tp = stage.throughput(b);
      best = b;
    }
  }
  if (best > 0) return best;
  // Nothing fits: take the smallest batch (lowest latency).
  return stage.batch_sizes().front();
}

struct Candidate {
  std::vector<int> workers;
  std::vector<int> batches;
  std::vector<double> thresholds;
  std::vector<double> fractions;  ///< conditional f_b(t_b) per boundary
};

int total_workers(const Candidate& c) {
  int t = 0;
  for (const int x : c.workers) t += x;
  return t;
}

double threshold_sum(const Candidate& c) {
  double t = 0.0;
  for (const double v : c.thresholds) t += v;
  return t;
}

/// Preference order: higher total threshold (the §3.3 "max t" objective,
/// summed over the chain's boundaries — the scalar threshold itself for a
/// two-stage cascade), then fewer workers, then lower estimated latency.
bool better_candidate(const AllocationInput& in, const Candidate& a,
                      const Candidate& b) {
  const double ta = threshold_sum(a), tb = threshold_sum(b);
  if (ta > tb + 1e-12) return true;
  if (ta < tb - 1e-12) return false;
  const int wa = total_workers(a), wb = total_workers(b);
  if (wa != wb) return wa < wb;
  return estimated_latency(in, a.batches) < estimated_latency(in, b.batches);
}

/// Recursively assign boundary thresholds (deepest-feasible scan per
/// boundary, all combinations) maximizing the total threshold within the
/// worker budget. For a single boundary the descending scan's first
/// feasible point is the optimum, so two-stage inputs do exactly the
/// original (b1, b2, t) enumeration.
void assign_boundaries(const AllocationInput& in,
                       const std::vector<int>& batches, std::size_t b,
                       double cumulative, int used, Candidate& current,
                       std::optional<Candidate>& best) {
  if (b == in.boundary_count()) {
    if (!best || better_candidate(in, current, *best)) best = current;
    return;
  }
  const auto& grid = in.boundary_grids[b];
  for (auto it = grid.rbegin(); it != grid.rend(); ++it) {
    // Bound: the scan descends, so once even the optimistic completion
    // (this threshold plus every remaining boundary at its maximum) falls
    // below the incumbent, the rest of the scan is dominated.
    if (best) {
      double optimistic = threshold_sum(current) + it->threshold;
      for (std::size_t r = b + 1; r < in.boundary_count(); ++r)
        optimistic += in.boundary_grids[r].back().threshold;
      if (optimistic < threshold_sum(*best) - 1e-12) return;
    }
    const int x = ceil_workers(
        in.provisioned_demand() * cumulative * it->fraction,
        in.stages[b + 1].perf.throughput(batches[b + 1]) *
            in.stages[b + 1].utilization_target);
    if (used + x > in.total_workers) continue;
    current.thresholds.push_back(it->threshold);
    current.fractions.push_back(it->fraction);
    current.workers.push_back(x);
    assign_boundaries(in, batches, b + 1, cumulative * it->fraction,
                      used + x, current, best);
    current.thresholds.pop_back();
    current.fractions.pop_back();
    current.workers.pop_back();
    // With one boundary left the first feasible (= highest) threshold is
    // optimal for this prefix; deeper chains keep scanning because a lower
    // t here can free workers for a higher t downstream.
    if (b + 1 == in.boundary_count()) return;
  }
}

/// For one batch combination, derive minimum worker counts and the
/// total-threshold-maximal feasible boundary assignment.
std::optional<Candidate> solve_batches(const AllocationInput& in,
                                       const std::vector<int>& batches) {
  const double d = in.provisioned_demand();
  if (estimated_latency(in, batches) > in.slo_seconds) return std::nullopt;

  Candidate c;
  c.batches = batches;
  // All demand passes stage 0.
  const int x0 = std::max(
      1, ceil_workers(d, in.stages[0].perf.throughput(batches[0]) *
                             in.stages[0].utilization_target));
  if (x0 > in.total_workers) return std::nullopt;
  c.workers.push_back(x0);

  std::optional<Candidate> best;
  assign_boundaries(in, batches, 0, 1.0, x0, c, best);
  return best;
}

std::optional<Candidate> enumerate(const AllocationInput& in) {
  const std::size_t n = in.stage_count();
  std::optional<Candidate> best;

  // Odometer over per-stage batch choices, stage 0 outermost.
  std::vector<std::size_t> idx(n, 0);
  std::vector<int> batches(n);
  for (;;) {
    for (std::size_t s = 0; s < n; ++s)
      batches[s] = in.stages[s].perf.batch_sizes()[idx[s]];
    auto cand = solve_batches(in, batches);
    if (cand && (!best || better_candidate(in, *cand, *best)))
      best = std::move(cand);

    // Advance the odometer (last stage fastest).
    std::size_t s = n;
    while (s-- > 0) {
      if (++idx[s] < in.stages[s].perf.batch_sizes().size()) break;
      idx[s] = 0;
      if (s == 0) return best;
    }
  }
}

AllocationDecision to_decision(const Candidate& c) {
  AllocationDecision out;
  out.feasible = true;
  out.workers = c.workers;
  out.batches = c.batches;
  out.thresholds = c.thresholds;
  out.deferral_fractions = c.fractions;
  return out;
}

}  // namespace

AllocationInput relax_queue_estimates(const AllocationInput& in) {
  AllocationInput relaxed = in;
  for (auto& s : relaxed.stages) s.queue_length = 0.0;
  return relaxed;
}

AllocationDecision overload_fallback(const AllocationInput& in) {
  // Overload: lowest thresholds, throughput-maximal SLO-respecting batches,
  // and a worker split proportional to stage service demand. The drop
  // policy at the workers sheds what cannot be served.
  const std::size_t n = in.stage_count();
  AllocationDecision out;
  out.resize_stages(n);
  out.feasible = false;
  // The stages share the SLO budget (Eq. 1): pick batches from the deepest
  // stage up (deeper stages dominate the budget), each within 75% of the
  // remaining budget so the stages above it keep room — otherwise a
  // throughput-maximal early batch can eat the whole budget and every
  // cascade query gets dropped at dispatch.
  double remaining = in.slo_seconds;
  for (std::size_t s = n; s-- > 0;) {
    const double cap = s > 0 ? 0.75 * remaining : remaining;
    out.batches[s] = best_throughput_batch(in.stages[s].perf, cap);
    remaining -= in.stages[s].perf.stage_latency(out.batches[s]);
  }
  // Entry fraction per stage at the lowest thresholds.
  std::vector<double> entry(n, 1.0);
  for (std::size_t b = 0; b < in.boundary_count(); ++b) {
    DS_REQUIRE(!in.boundary_grids[b].empty(), "empty threshold grid");
    const auto& lowest = in.boundary_grids[b].front();
    out.thresholds[b] = lowest.threshold;
    out.deferral_fractions[b] = lowest.fraction;
    entry[b + 1] = entry[b] * lowest.fraction;
  }
  const double d = in.provisioned_demand();
  std::vector<double> need(n);
  double total_need = 0.0;
  for (std::size_t s = 0; s < n; ++s) {
    need[s] = d * entry[s] /
              std::max(in.stages[s].perf.throughput(out.batches[s]), 1e-9);
    total_need += need[s];
  }
  total_need = std::max(total_need, 1e-9);
  int assigned = 0;
  for (std::size_t s = 0; s + 1 < n; ++s) {
    int x = static_cast<int>(
        std::round(in.total_workers * need[s] / total_need));
    if (s == 0) x = std::max(x, 1);
    x = std::min(std::max(x, 0), in.total_workers - assigned);
    out.workers[s] = x;
    assigned += x;
  }
  out.workers[n - 1] = in.total_workers - assigned;
  return out;
}

AllocationDecision ExhaustiveAllocator::allocate(const AllocationInput& in) {
  // ds-lint: allow(wall-clock): solve_time_ms is telemetry; the decision
  // itself is a pure function of `in`.
  const auto start = std::chrono::steady_clock::now();
  DS_REQUIRE(in.stage_count() >= 1, "allocation needs at least one stage");
  DS_REQUIRE(in.boundary_count() + 1 == in.stage_count(),
             "one threshold grid per cascade boundary");
  for (const auto& grid : in.boundary_grids)
    DS_REQUIRE(!grid.empty(), "empty threshold grid");

  // A transient queue backlog can make Eq. 1 unsatisfiable for every
  // configuration; that is a drain problem, not a provisioning one, so
  // retry capacity planning with the backlog terms dropped before
  // declaring overload.
  std::optional<Candidate> best = enumerate(in);
  if (!best) best = enumerate(relax_queue_estimates(in));
  AllocationDecision out = best ? to_decision(*best) : overload_fallback(in);

  out.solve_time_ms =
      std::chrono::duration<double, std::milli>(
          // ds-lint: allow(wall-clock): telemetry end-stamp, see above
          std::chrono::steady_clock::now() - start)
          .count();
  return out;
}

}  // namespace diffserve::control
