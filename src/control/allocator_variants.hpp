// Ablation variants of the resource allocator (§4.5, Figure 8).
//
//   * StaticThresholdAllocator — the threshold is pinned; server counts and
//     batch sizes still adapt ("Static threshold").
//   * NoQueueModelAllocator — replaces the Little's-law queuing estimate
//     with the Proteus-style heuristic q = 2 * e(b) ("No queuing model").
//   * AimdBatchAllocator — batch sizes follow Clipper's additive-increase /
//     multiplicative-decrease on SLO-violation feedback instead of being
//     optimized ("AIMD").
// Each wraps an inner allocator and perturbs its input or post-processes
// its decision, so the variants compose with either the MILP or the
// exhaustive solver.
#pragma once

#include <memory>

#include "control/allocator.hpp"

namespace diffserve::control {

class StaticThresholdAllocator : public Allocator {
 public:
  StaticThresholdAllocator(std::unique_ptr<Allocator> inner,
                           double fixed_threshold);
  AllocationDecision allocate(const AllocationInput& input) override;
  std::string name() const override { return "static-threshold"; }

 private:
  std::unique_ptr<Allocator> inner_;
  double fixed_threshold_;
};

class NoQueueModelAllocator : public Allocator {
 public:
  explicit NoQueueModelAllocator(std::unique_ptr<Allocator> inner);
  AllocationDecision allocate(const AllocationInput& input) override;
  std::string name() const override { return "no-queue-model"; }

 private:
  std::unique_ptr<Allocator> inner_;
};

struct AimdConfig {
  /// Violation ratio above which the batch is cut multiplicatively.
  double violation_trigger = 0.05;
  double decrease_factor = 0.5;
};

class AimdBatchAllocator : public Allocator {
 public:
  AimdBatchAllocator(std::unique_ptr<Allocator> inner, AimdConfig cfg = {});
  AllocationDecision allocate(const AllocationInput& input) override;
  std::string name() const override { return "aimd-batching"; }

  /// Current AIMD batch per stage (sized after the first allocate()).
  const std::vector<int>& current_batches() const { return batches_; }
  int current_light_batch() const {
    return batches_.empty() ? 1 : batches_.front();
  }
  int current_heavy_batch() const {
    return batches_.empty() ? 1 : batches_.back();
  }

 private:
  static int step_up(const std::vector<int>& sizes, int current);
  static int step_down(const std::vector<int>& sizes, int current,
                       double factor);

  std::unique_ptr<Allocator> inner_;
  AimdConfig cfg_;
  std::vector<int> batches_;  ///< per-stage, grown on first use
};

}  // namespace diffserve::control
