#include "runtime/threaded_runtime.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <unordered_map>
#include <vector>

#include "control/controller.hpp"
#include "engine/engine.hpp"
#include "util/check.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/trace_clock.hpp"

namespace diffserve::runtime {

namespace {

/// ExecutionBackend over real threads and the compressed wall clock: a
/// timer thread delivers deferred callbacks, one executor thread per
/// worker sleeps for each batch's profiled latency, and the guard is a
/// real mutex serializing all engine state.
class ThreadedBackend final : public engine::ExecutionBackend {
 public:
  ThreadedBackend(const util::TraceClock& clock, int workers)
      : clock_(clock) {
    executors_.reserve(static_cast<std::size_t>(workers));
    for (int i = 0; i < workers; ++i)
      executors_.push_back(std::make_unique<Executor>());
  }
  ~ThreadedBackend() override { stop(); }

  void start() {
    timer_thread_ = std::thread([this] { timer_main(); });
    for (auto& ex : executors_)
      ex->thread = std::thread([this, e = ex.get()] { executor_main(*e); });
  }

  /// Joins all threads; in-flight batches (including follow-on batches
  /// they trigger) finish and deliver their completions first. Idempotent.
  void stop() {
    if (stop_.load()) return;
    // Quiesce before signalling stop: a finishing light batch can
    // dispatch a follow-on heavy batch, which must still be accepted and
    // executed rather than lost to an already-joined executor thread.
    // Bounded so a wedged pipeline cannot hang shutdown.
    const auto quiesce_deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(2);
    for (;;) {
      bool active = false;
      for (auto& ex : executors_) {
        std::lock_guard<std::mutex> lk(ex->mu);
        active = active || ex->has_job || ex->busy;
      }
      if (!active || std::chrono::steady_clock::now() > quiesce_deadline)
        break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    if (stop_.exchange(true)) return;
    {
      std::lock_guard<std::mutex> lk(timer_mu_);
      timer_cv_.notify_all();
    }
    for (auto& ex : executors_) {
      std::lock_guard<std::mutex> lk(ex->mu);
      ex->cv.notify_all();
    }
    if (timer_thread_.joinable()) timer_thread_.join();
    for (auto& ex : executors_)
      if (ex->thread.joinable()) ex->thread.join();
  }

  double now() const override { return clock_.now(); }

  std::unique_lock<std::mutex> guard() override {
    return std::unique_lock<std::mutex>(mu_);
  }

  engine::TimerHandle defer(double delay_seconds,
                            std::function<void()> fn) override {
    std::lock_guard<std::mutex> lk(timer_mu_);
    const std::uint64_t id = next_id_++;
    heap_.push({clock_.now() + std::max(delay_seconds, 0.0), id});
    fns_[id] = std::move(fn);
    timer_cv_.notify_one();
    return {id};
  }

  bool cancel(engine::TimerHandle h) override {
    std::lock_guard<std::mutex> lk(timer_mu_);
    return fns_.erase(h.id) > 0;
  }

  void execute(int worker_id, double exec_seconds,
               std::function<void()> done) override {
    Executor& ex = *executors_[static_cast<std::size_t>(worker_id)];
    std::lock_guard<std::mutex> lk(ex.mu);
    if (stop_.load()) return;  // shutting down: executor may be gone
    DS_CHECK(!ex.has_job, "worker already executing");
    // Absolute due time, stamped at dispatch: the executor sleeps *until*
    // it rather than *for* the latency, so hand-off latency does not
    // accumulate into batch lateness (which the engine would count as
    // SLO violations).
    ex.due = clock_.now() + exec_seconds;
    ex.done = std::move(done);
    ex.has_job = true;
    ex.cv.notify_one();
  }

 private:
  struct TimerEntry {
    double at;
    std::uint64_t id;
  };
  struct TimerCompare {
    bool operator()(const TimerEntry& a, const TimerEntry& b) const {
      return a.at > b.at;  // min-heap on due time
    }
  };
  struct Executor {
    std::mutex mu;
    std::condition_variable cv;
    bool has_job = false;
    bool busy = false;  ///< picked up and sleeping/delivering (for stop())
    double due = 0.0;   ///< absolute trace time the batch finishes
    std::function<void()> done;
    std::thread thread;
  };

  void timer_main() {
    for (;;) {
      std::function<void()> fn;
      {
        std::unique_lock<std::mutex> lk(timer_mu_);
        for (;;) {
          if (stop_.load()) return;
          // Cancelled entries stay in the heap; skip them here.
          while (!heap_.empty() && fns_.find(heap_.top().id) == fns_.end())
            heap_.pop();
          if (heap_.empty()) {
            timer_cv_.wait_for(lk, std::chrono::milliseconds(2));
            continue;
          }
          const double due = heap_.top().at;
          const double now = clock_.now();
          if (due <= now) {
            const std::uint64_t id = heap_.top().id;
            heap_.pop();
            auto it = fns_.find(id);
            fn = std::move(it->second);
            fns_.erase(it);
            break;
          }
          // Wake at the due time, capped so stop/new-timer are noticed.
          timer_cv_.wait_for(
              lk, std::min<std::chrono::duration<double>>(
                      clock_.wall_duration(due - now),
                      std::chrono::milliseconds(2)));
        }
      }
      fn();  // acquires the engine guard internally
    }
  }

  void executor_main(Executor& ex) {
    for (;;) {
      std::function<void()> done;
      double due = 0.0;
      {
        std::unique_lock<std::mutex> lk(ex.mu);
        ex.cv.wait(lk, [&] { return ex.has_job || stop_.load(); });
        if (!ex.has_job) return;  // stopping
        due = ex.due;
        done = std::move(ex.done);
        ex.has_job = false;
        ex.busy = true;
      }
      clock_.sleep_until(due);
      done();  // acquires the engine guard internally
      {
        std::lock_guard<std::mutex> lk(ex.mu);
        ex.busy = false;
      }
    }
  }

  const util::TraceClock& clock_;
  std::mutex mu_;  ///< the engine guard

  std::mutex timer_mu_;
  std::condition_variable timer_cv_;
  std::priority_queue<TimerEntry, std::vector<TimerEntry>, TimerCompare>
      heap_;
  std::unordered_map<std::uint64_t, std::function<void()>> fns_;
  std::uint64_t next_id_ = 1;
  std::thread timer_thread_;

  std::vector<std::unique_ptr<Executor>> executors_;
  std::atomic<bool> stop_{false};
};

/// Non-owning adapter: the Controller owns its allocator, but run_threaded
/// borrows one from the caller.
class BorrowedAllocator final : public control::Allocator {
 public:
  explicit BorrowedAllocator(control::Allocator& inner) : inner_(inner) {}
  control::AllocationDecision allocate(
      const control::AllocationInput& input) override {
    return inner_.allocate(input);
  }
  std::string name() const override { return inner_.name(); }

 private:
  control::Allocator& inner_;
};

}  // namespace

RuntimeResult run_threaded(const core::CascadeEnvironment& env,
                           control::Allocator& allocator,
                           const trace::RateTrace& trace,
                           const RuntimeConfig& cfg) {
  DS_REQUIRE(cfg.total_workers >= 2, "need at least two workers");
  const double slo =
      cfg.slo_seconds > 0.0 ? cfg.slo_seconds : env.default_slo();

  util::TraceClock clock(cfg.time_scale);
  ThreadedBackend backend(clock, cfg.total_workers);

  engine::EngineConfig ecfg;
  ecfg.total_workers = cfg.total_workers;
  ecfg.slo_seconds = slo;
  ecfg.model_load_delay = cfg.model_load_delay;
  ecfg.heavy_reserve_factor = cfg.heavy_reserve_factor;
  // Wall-clock timer jitter scales with the time compression; absorb it so
  // deadline-boundary batches launch in time (the DES needs no slack).
  ecfg.launch_slack_seconds = cfg.launch_slack_wall_seconds * cfg.time_scale;
  engine::CascadeEngine eng(backend, env.workload(), env.repository(),
                            env.cascade(), &env.disc(), env.scorer(), ecfg);

  control::ControllerConfig ccfg;
  ccfg.period_seconds = cfg.control_period;
  ccfg.over_provision = cfg.over_provision;
  ccfg.max_deferral_fraction = cfg.max_deferral_fraction;
  ccfg.initial_demand_guess = trace.qps_at(0.0);
  control::Controller controller(
      eng, std::make_unique<BorrowedAllocator>(allocator),
      env.offline_profile(), ccfg);

  util::Rng rng(cfg.arrival_seed);
  const auto arrivals = trace::generate_arrivals(trace, rng, cfg.arrivals);

  backend.start();
  controller.start();

  // The client: replay arrivals in compressed wall time.
  for (const double t : arrivals) {
    clock.sleep_until(t);
    eng.submit_next();
  }

  // Drain: give in-flight queries until trace end + SLO + margin.
  clock.sleep_until(trace.duration() + slo + 5.0);
  controller.stop();
  backend.stop();

  RuntimeResult r;
  const auto& sink = eng.sink();
  r.submitted = eng.submitted();
  r.completed = sink.completed();
  r.dropped = sink.dropped();
  r.reconfigurations = eng.reconfigurations();
  r.violation_ratio = sink.violation_ratio();
  r.mean_latency = sink.mean_latency();
  r.light_served_fraction = sink.light_served_fraction();
  r.overall_fid = r.completed >= 2 ? sink.overall_fid() : -1.0;
  return r;
}

}  // namespace diffserve::runtime
