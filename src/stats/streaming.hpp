// Streaming scalar statistics: Welford mean/variance and an exact
// reservoir-free percentile tracker over a bounded buffer.
#pragma once

#include <cstddef>
#include <vector>

namespace diffserve::stats {

/// Numerically stable running mean and variance (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);
  void reset();

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Population variance; 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact percentile computation over all recorded samples. Used where the
/// sample count is bounded (per-experiment latency distributions).
class PercentileTracker {
 public:
  void add(double x) { samples_.push_back(x); }
  std::size_t count() const { return samples_.size(); }

  /// Linear-interpolated percentile, p in [0, 100]. Requires >=1 sample.
  double percentile(double p) const;
  double median() const { return percentile(50.0); }

  void reset() { samples_.clear(); }
  const std::vector<double>& samples() const { return samples_; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

}  // namespace diffserve::stats
