// Table 1: capability matrix of the compared approaches (allocation
// static/dynamic x query-aware), plus a measured one-line summary of each
// approach on a short dynamic trace to ground the table in behaviour.
#include "bench_common.hpp"

using namespace diffserve;

int main() {
  bench::banner("Table 1", "approach capability matrix");
  std::printf("%-20s %-12s %-12s\n", "Approach", "Allocation", "Query-aware");
  std::printf("%-20s %-12s %-12s\n", "Clipper-Light", "Static", "No");
  std::printf("%-20s %-12s %-12s\n", "Clipper-Heavy", "Static", "No");
  std::printf("%-20s %-12s %-12s\n", "Proteus", "Dynamic", "No");
  std::printf("%-20s %-12s %-12s\n", "DiffServe-Static", "Static", "Yes");
  std::printf("%-20s %-12s %-12s\n", "DiffServe", "Dynamic", "Yes");

  const auto env = bench::make_env(2000);
  const auto tr = trace::RateTrace::azure_like(4.0, 20.0, 150.0, 3);

  std::printf("\nmeasured on a 4->20 QPS trace (Cascade 1, 16 workers):\n");
  bench::ReportTable table("tab01_summary", bench::summary_columns());
  for (const auto approach : core::comparison_approaches()) {
    core::RunConfig rc;
    rc.approach = approach;
    rc.total_workers = 16;
    rc.trace = tr;
    const auto r = run_experiment(env, rc);
    table.row(bench::summary_cells(r));
  }
  return 0;
}
