// Tests for the approximate prompt-reuse cache: the ApproxCache store
// (tiered hit levels, popularity-weighted LRU eviction, determinism), the
// Zipfian prompt sampler, the reuse-noise quality perturbation, and the
// end-to-end behaviour the subsystem exists for — on a Zipfian trace the
// cache absorbs repeated prompts (hit ratio > 0.2), lowers mean latency
// and SLO violations at equal capacity with a bounded FID cost, agrees
// across the DES and threaded backends, and feeds the controller's
// effective-demand discount.
#include <gtest/gtest.h>

#include <cmath>

#include "cache/approx_cache.hpp"
#include "control/exhaustive_allocator.hpp"
#include "core/environment.hpp"
#include "core/experiment.hpp"
#include "runtime/threaded_runtime.hpp"
#include "serving/system.hpp"
#include "trace/prompt_mix.hpp"

namespace diffserve::cache {
namespace {

std::vector<double> key_at(double x) { return {x, 0.0, 0.0}; }

CacheConfig small_config() {
  CacheConfig cfg;
  cfg.enabled = true;
  cfg.capacity = 4;
  cfg.exact_distance = 1e-9;
  cfg.near_distance = 1.0;
  cfg.far_distance = 2.0;
  return cfg;
}

TEST(ApproxCache, TieredHitLevelsByDistance) {
  ApproxCache cache(small_config());
  cache.insert(/*prompt=*/7, /*tier=*/2, /*stage=*/0, key_at(0.0), 0.0);

  const auto exact = cache.lookup(key_at(0.0), 1.0);
  EXPECT_EQ(exact.level, HitLevel::kExact);
  EXPECT_EQ(exact.donor_prompt, 7u);
  EXPECT_EQ(exact.donor_tier, 2);
  EXPECT_EQ(exact.step_fraction, 0.0);

  const auto near = cache.lookup(key_at(0.5), 2.0);
  EXPECT_EQ(near.level, HitLevel::kApproxNear);
  EXPECT_NEAR(near.distance, 0.5, 1e-12);
  EXPECT_EQ(near.step_fraction, cache.config().near_step_fraction);

  const auto far = cache.lookup(key_at(1.5), 3.0);
  EXPECT_EQ(far.level, HitLevel::kApproxFar);
  EXPECT_EQ(far.step_fraction, cache.config().far_step_fraction);

  const auto miss = cache.lookup(key_at(5.0), 4.0);
  EXPECT_EQ(miss.level, HitLevel::kMiss);
  EXPECT_EQ(miss.step_fraction, 1.0);

  const auto& s = cache.stats();
  EXPECT_EQ(s.lookups, 4u);
  EXPECT_EQ(s.exact_hits, 1u);
  EXPECT_EQ(s.near_hits, 1u);
  EXPECT_EQ(s.far_hits, 1u);
  EXPECT_NEAR(s.hit_ratio(), 0.75, 1e-12);
  EXPECT_NEAR(s.exact_hit_ratio(), 0.25, 1e-12);
}

TEST(ApproxCache, CapacityBoundWithEviction) {
  ApproxCache cache(small_config());
  for (int i = 0; i < 6; ++i)
    cache.insert(static_cast<quality::QueryId>(i), 1, 0,
                 key_at(10.0 * i), static_cast<double>(i));
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_EQ(cache.stats().evictions, 2u);
}

TEST(ApproxCache, PopularEntriesSurviveEviction) {
  CacheConfig cfg = small_config();
  cfg.popularity_weight = 100.0;  // popularity dominates recency
  ApproxCache cache(cfg);
  cache.insert(0, 1, 0, key_at(0.0), 0.0);
  // Make entry 0 popular, then flood the cache with one-off entries.
  for (int i = 0; i < 8; ++i) cache.lookup(key_at(0.0), 1.0 + i);
  for (int i = 1; i < 8; ++i)
    cache.insert(static_cast<quality::QueryId>(i), 1, 0,
                 key_at(10.0 * i), 20.0 + i);
  // The popular entry outlived the LRU churn.
  const auto r = cache.lookup(key_at(0.0), 100.0);
  EXPECT_EQ(r.level, HitLevel::kExact);
  EXPECT_EQ(r.donor_prompt, 0u);
}

TEST(ApproxCache, ReinsertKeepsHigherTier) {
  ApproxCache cache(small_config());
  cache.insert(3, /*tier=*/5, /*stage=*/1, key_at(0.0), 0.0);
  cache.insert(3, /*tier=*/2, /*stage=*/0, key_at(0.0), 1.0);
  EXPECT_EQ(cache.size(), 1u);
  const auto r = cache.lookup(key_at(0.0), 2.0);
  EXPECT_EQ(r.donor_tier, 5);  // the lighter re-serve did not downgrade it
}

TEST(ApproxCache, CosineMetricIgnoresMagnitude) {
  CacheConfig cfg = small_config();
  cfg.metric = SimilarityMetric::kCosine;
  cfg.exact_distance = 1e-9;
  cfg.near_distance = 0.3;
  cfg.far_distance = 1.0;
  ApproxCache cache(cfg);
  cache.insert(1, 1, 0, {1.0, 0.0, 0.0}, 0.0);
  // Parallel but scaled: cosine distance 0 -> exact.
  EXPECT_EQ(cache.lookup({5.0, 0.0, 0.0}, 1.0).level, HitLevel::kExact);
  // Orthogonal: cosine distance 1 -> far tier.
  EXPECT_EQ(cache.lookup({0.0, 1.0, 0.0}, 2.0).level,
            HitLevel::kApproxFar);
  // Opposed: cosine distance 2 -> miss.
  EXPECT_EQ(cache.lookup({-1.0, 0.0, 0.0}, 3.0).level, HitLevel::kMiss);
}

TEST(ApproxCache, DeterministicAcrossInstances) {
  // The cache has no internal randomness: two instances fed the same
  // operation sequence report identical stats (the property that keeps
  // DES and threaded runs in agreement).
  ApproxCache a(small_config()), b(small_config());
  for (int i = 0; i < 40; ++i) {
    const double x = (i * 7) % 13 * 0.4;
    a.lookup(key_at(x), i);
    b.lookup(key_at(x), i);
    if (i % 3 == 0) {
      a.insert(static_cast<quality::QueryId>(i), 1, 0, key_at(x), i);
      b.insert(static_cast<quality::QueryId>(i), 1, 0, key_at(x), i);
    }
  }
  EXPECT_EQ(a.stats().lookups, b.stats().lookups);
  EXPECT_EQ(a.stats().exact_hits, b.stats().exact_hits);
  EXPECT_EQ(a.stats().near_hits, b.stats().near_hits);
  EXPECT_EQ(a.stats().far_hits, b.stats().far_hits);
  EXPECT_EQ(a.stats().evictions, b.stats().evictions);
  EXPECT_EQ(a.size(), b.size());
}

TEST(ApproxCache, RejectsBadConfig) {
  CacheConfig cfg = small_config();
  cfg.capacity = 0;
  EXPECT_THROW(ApproxCache{cfg}, std::invalid_argument);
  cfg = small_config();
  cfg.near_distance = 3.0;  // near > far
  EXPECT_THROW(ApproxCache{cfg}, std::invalid_argument);
  cfg = small_config();
  cfg.near_step_fraction = 0.0;
  EXPECT_THROW(ApproxCache{cfg}, std::invalid_argument);
}

// ---- prompt popularity sampler --------------------------------------------

TEST(PromptSampler, RoundRobinMatchesModuloCycling) {
  trace::PromptSampler s(5);
  for (std::uint32_t i = 0; i < 12; ++i) EXPECT_EQ(s.next(), i % 5);
}

TEST(PromptSampler, ZipfSkewsTowardPopularPrompts) {
  trace::PromptMixConfig cfg;
  cfg.kind = trace::PromptMixConfig::Kind::kZipf;
  cfg.zipf_exponent = 1.2;
  cfg.locality = 0.0;
  trace::PromptSampler s(200, cfg);
  std::size_t top10 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (s.next() < 10) ++top10;
  // Under uniform sampling the top-10 share would be 5%; Zipf(1.2)
  // concentrates well over a third of the mass there.
  EXPECT_GT(static_cast<double>(top10) / n, 0.35);
}

TEST(PromptSampler, DeterministicPerSeed) {
  trace::PromptMixConfig cfg;
  cfg.kind = trace::PromptMixConfig::Kind::kZipf;
  trace::PromptSampler a(100, cfg), b(100, cfg);
  cfg.seed += 1;
  trace::PromptSampler c(100, cfg);
  bool any_diff = false;
  for (int i = 0; i < 200; ++i) {
    const auto va = a.next();
    EXPECT_EQ(va, b.next());
    any_diff = any_diff || va != c.next();
  }
  EXPECT_TRUE(any_diff);
}

TEST(PromptSampler, LocalityIncreasesShortRangeRepeats) {
  auto repeat_fraction = [](double locality) {
    trace::PromptMixConfig cfg;
    cfg.kind = trace::PromptMixConfig::Kind::kZipf;
    cfg.zipf_exponent = 0.6;  // mild skew so repeats come from locality
    cfg.locality = locality;
    cfg.locality_window = 16;
    trace::PromptSampler s(2000, cfg);
    std::deque<std::uint32_t> window;
    int repeats = 0;
    const int n = 5000;
    for (int i = 0; i < n; ++i) {
      const auto id = s.next();
      for (const auto w : window)
        if (w == id) {
          ++repeats;
          break;
        }
      window.push_back(id);
      if (window.size() > 16) window.pop_front();
    }
    return static_cast<double>(repeats) / n;
  };
  EXPECT_GT(repeat_fraction(0.5), repeat_fraction(0.0) + 0.2);
}

// ---- reuse-noise quality perturbation -------------------------------------

TEST(Workload, CachedFeatureInheritsDonorPlusDistanceNoise) {
  quality::Workload w(64);
  const auto donor = w.generated_feature(3, 2);
  // Zero distance: the donor's image verbatim.
  EXPECT_EQ(w.cached_feature(9, 3, 2, 0.0), donor);
  // Deterministic per (q, donor, tier, distance).
  EXPECT_EQ(w.cached_feature(9, 3, 2, 1.0), w.cached_feature(9, 3, 2, 1.0));
  // Noise grows with distance.
  auto err = [&](double dist) {
    const auto x = w.cached_feature(9, 3, 2, dist);
    double sq = 0.0;
    for (std::size_t d = 0; d < x.size(); ++d)
      sq += (x[d] - donor[d]) * (x[d] - donor[d]);
    return std::sqrt(sq);
  };
  EXPECT_GT(err(0.5), 0.0);
  EXPECT_GT(err(4.0), err(0.5));
}

// ---- end-to-end: the cache as part of the serving stack -------------------

const core::CascadeEnvironment& shared_env() {
  static const core::CascadeEnvironment env = [] {
    core::EnvironmentConfig cfg;
    cfg.workload_queries = 600;
    cfg.discriminator.train_queries = 400;
    cfg.profile_queries = 400;
    return core::CascadeEnvironment(cfg);
  }();
  return env;
}

trace::PromptMixConfig zipf_mix() {
  trace::PromptMixConfig mix;
  mix.kind = trace::PromptMixConfig::Kind::kZipf;
  mix.zipf_exponent = 1.1;
  mix.locality = 0.3;
  return mix;
}

CacheConfig serving_cache() {
  CacheConfig cfg;
  cfg.enabled = true;
  cfg.capacity = 128;
  return cfg;
}

core::RunConfig zipf_run(const trace::RateTrace& tr) {
  core::RunConfig rc;
  rc.approach = core::Approach::kDiffServeExhaustive;
  rc.total_workers = 6;
  rc.trace = tr;
  rc.controller.initial_demand_guess = tr.qps_at(0.0);
  rc.system.prompt_mix = zipf_mix();
  return rc;
}

TEST(CacheServing, ZipfTraceHitsAndImprovesLatencyAndSlo) {
  const auto tr = trace::RateTrace::constant(10.0, 120.0);
  const auto off = core::run_experiment(shared_env(), zipf_run(tr));

  auto on_cfg = zipf_run(tr);
  on_cfg.system.cache = serving_cache();
  const auto on = core::run_experiment(shared_env(), on_cfg);

  // The repetition in the Zipfian trace is reused, not recomputed.
  EXPECT_GT(on.cache_hit_ratio, 0.2);
  EXPECT_GT(on.cache_exact_hit_ratio, 0.0);
  EXPECT_EQ(off.cache_hit_ratio, 0.0);

  // Equal capacity, identical arrivals: reuse buys latency and SLO.
  EXPECT_EQ(on.submitted, off.submitted);
  EXPECT_LT(on.mean_latency, off.mean_latency);
  EXPECT_LE(on.violation_ratio, off.violation_ratio);

  // Query conservation through the new cache terminal paths: after the
  // DES drains, every admitted query reached exactly one terminal
  // outcome — a double-completed exact hit or a completion lost behind a
  // pending hit_latency timer would break the equality.
  EXPECT_EQ(on.completed + on.dropped, on.submitted);

  // Reuse error is bounded: FID moves, but stays in the same band.
  ASSERT_GT(off.overall_fid, 0.0);
  ASSERT_GT(on.overall_fid, 0.0);
  EXPECT_LT(std::fabs(on.overall_fid - off.overall_fid),
            0.35 * off.overall_fid);
}

TEST(CacheServing, ControllerDiscountsDemandByExactHits) {
  const auto tr = trace::RateTrace::constant(10.0, 100.0);
  auto rc = zipf_run(tr);
  rc.system.cache = serving_cache();
  const auto r = core::run_experiment(shared_env(), rc);

  ASSERT_FALSE(r.control_history.empty());
  const auto& last = r.control_history.back();
  // The online EWMA saw the hits and the allocator planned for the
  // discounted effective demand.
  EXPECT_GT(last.cache_exact_hit_ratio, 0.05);
  EXPECT_LE(last.cache_service_discount, 1.0);
  EXPECT_LT(last.demand_estimate, 10.0);
}

TEST(CacheServing, ExactHitsServeAtCacheLatency) {
  // Tiny workload + round-robin cycling: every prompt repeats every 64
  // queries, so a warm cache serves exact hits at hit_latency.
  core::EnvironmentConfig ec;
  ec.workload_queries = 64;
  ec.discriminator.train_queries = 64;
  ec.profile_queries = 64;
  const core::CascadeEnvironment env(ec);

  sim::Simulation sim;
  serving::SystemConfig cfg;
  cfg.total_workers = 2;
  cfg.slo_seconds = 10.0;
  cfg.cache = serving_cache();
  serving::ServingSystem system(sim, env.workload(), env.repository(),
                                env.cascade(), env.discs(), env.scorer(),
                                cfg);
  serving::AllocationPlan plan;
  plan.light_workers() = 1;
  plan.heavy_workers() = 1;
  plan.threshold() = 0.0;  // no deferrals; keep the flow simple
  system.apply(plan);

  std::vector<double> arrivals;
  for (int i = 0; i < 160; ++i) arrivals.push_back(0.5 * i);
  system.inject_arrivals(arrivals);
  sim.run_all();

  const auto stats = system.engine().cache_stats();
  // Second and later cycles hit. Not every repeat is exact: a prompt
  // whose first query approx-hit a neighbour is never inserted (approx
  // results stay out of the cache), so its repeats keep approx-hitting.
  EXPECT_GT(stats.exact_hits, 40u);
  EXPECT_GT(stats.hits(), 80u);
  // Conservation: each arrival terminated exactly once.
  EXPECT_EQ(system.sink().total(), 160u);
  const auto& sink = system.sink();
  EXPECT_GT(sink.hit_level_count(HitLevel::kExact), 0u);
  EXPECT_NEAR(sink.mean_cache_latency(), cfg.cache.hit_latency, 1e-9);
  EXPECT_LT(sink.mean_cache_latency(), sink.mean_latency());
}

TEST(CacheServing, DesAndThreadedBackendsAgreeWithCacheOn) {
  // The §4.3 parity property must survive the cache: same trace, same
  // Zipfian prompt stream, cache enabled on both backends.
  const auto tr = trace::RateTrace::azure_like(2.0, 8.0, 80.0, 7);

  auto sim_cfg = zipf_run(tr);
  sim_cfg.system.cache = serving_cache();
  const auto des = core::run_experiment(shared_env(), sim_cfg);

  control::ExhaustiveAllocator alloc;
  runtime::RuntimeConfig rt_cfg;
  rt_cfg.total_workers = 6;
  rt_cfg.time_scale = 30.0;
  rt_cfg.cache = serving_cache();
  rt_cfg.prompt_mix = zipf_mix();
  const auto threaded =
      runtime::run_threaded(shared_env(), alloc, tr, rt_cfg);

  EXPECT_EQ(des.submitted, threaded.submitted);
  // Conservation on the threaded backend: nothing terminates twice, and
  // at most a small in-flight slack remains unterminated at shutdown.
  EXPECT_LE(threaded.completed + threaded.dropped, threaded.submitted);
  EXPECT_GE(threaded.completed + threaded.dropped + 5, threaded.submitted);
  ASSERT_GT(des.overall_fid, 0.0);
  ASSERT_GT(threaded.overall_fid, 0.0);
  const double fid_rel_diff =
      std::fabs(des.overall_fid - threaded.overall_fid) / des.overall_fid;
  EXPECT_LT(fid_rel_diff, 0.05);
  EXPECT_LT(std::fabs(des.violation_ratio - threaded.violation_ratio),
            0.05);
  EXPECT_GT(threaded.cache_hit_ratio, 0.2);
  EXPECT_LT(std::fabs(des.cache_hit_ratio - threaded.cache_hit_ratio),
            0.05);
}

}  // namespace
}  // namespace diffserve::cache
