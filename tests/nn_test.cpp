// Tests for the nn substrate: softmax, analytical-vs-numerical gradients,
// training convergence, and classifier metrics.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/dense.hpp"
#include "nn/metrics.hpp"
#include "nn/mlp.hpp"
#include "util/rng.hpp"

namespace diffserve::nn {
namespace {

TEST(Softmax, SumsToOneAndOrders) {
  const auto p = softmax({1.0, 2.0, 3.0});
  EXPECT_NEAR(p[0] + p[1] + p[2], 1.0, 1e-12);
  EXPECT_LT(p[0], p[1]);
  EXPECT_LT(p[1], p[2]);
}

TEST(Softmax, StableForLargeLogits) {
  const auto p = softmax({1000.0, 1001.0});
  EXPECT_NEAR(p[0] + p[1], 1.0, 1e-12);
  EXPECT_GT(p[1], p[0]);
  EXPECT_FALSE(std::isnan(p[0]));
}

TEST(Dense, ForwardMatchesHandComputation) {
  util::Rng rng(1);
  Dense layer(2, 1, Activation::kLinear, rng);
  // Overwrite weights via backward-free training is awkward; instead check
  // linearity: f(2x) - f(0) == 2 (f(x) - f(0)).
  const auto f0 = layer.forward({0.0, 0.0});
  const auto f1 = layer.forward({1.0, 2.0});
  const auto f2 = layer.forward({2.0, 4.0});
  EXPECT_NEAR(f2[0] - f0[0], 2.0 * (f1[0] - f0[0]), 1e-12);
}

TEST(Dense, ReluClampsNegativePreactivations) {
  util::Rng rng(2);
  Dense layer(3, 8, Activation::kRelu, rng);
  const auto out = layer.forward({1.0, -2.0, 0.5});
  for (double v : out) EXPECT_GE(v, 0.0);
}

TEST(Dense, BackwardMatchesNumericalGradient) {
  // Scalar loss L = sum(outputs); check dL/dinput numerically.
  util::Rng rng(3);
  Dense layer(4, 3, Activation::kRelu, rng);
  const std::vector<double> x = {0.3, -0.7, 1.1, 0.2};

  layer.forward(x);
  const auto grad_in = layer.backward({1.0, 1.0, 1.0});

  const double eps = 1e-6;
  for (std::size_t i = 0; i < x.size(); ++i) {
    auto xp = x;
    auto xm = x;
    xp[i] += eps;
    xm[i] -= eps;
    double lp = 0.0, lm = 0.0;
    for (const double v : layer.forward(xp)) lp += v;
    for (const double v : layer.forward(xm)) lm += v;
    const double numeric = (lp - lm) / (2.0 * eps);
    EXPECT_NEAR(grad_in[i], numeric, 1e-4) << "input index " << i;
  }
}

TEST(Dense, ParameterCount) {
  util::Rng rng(4);
  Dense layer(10, 5, Activation::kLinear, rng);
  EXPECT_EQ(layer.parameter_count(), 10u * 5u + 5u);
}

TEST(Mlp, RequiresTwoOutputs) {
  EXPECT_THROW(MlpClassifier({4, 3}, 1), std::invalid_argument);
  EXPECT_NO_THROW(MlpClassifier({4, 3, 2}, 1));
}

TEST(Mlp, LearnsLinearlySeparableData) {
  util::Rng rng(5);
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  for (int i = 0; i < 600; ++i) {
    const double a = rng.normal();
    const double b = rng.normal();
    x.push_back({a, b});
    y.push_back(a + b > 0.0 ? 1 : 0);
  }
  MlpClassifier model({2, 8, 2}, 7);
  TrainConfig cfg;
  cfg.epochs = 20;
  const auto report = model.train(x, y, cfg);
  EXPECT_GT(report.final_train_accuracy, 0.95);
  // Loss decreases.
  EXPECT_LT(report.epoch_losses.back(), report.epoch_losses.front());
}

TEST(Mlp, LearnsXorWithHiddenLayer) {
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  util::Rng rng(6);
  for (int i = 0; i < 800; ++i) {
    const double a = rng.uniform() > 0.5 ? 1.0 : 0.0;
    const double b = rng.uniform() > 0.5 ? 1.0 : 0.0;
    x.push_back({a, b});
    y.push_back(static_cast<int>(a) ^ static_cast<int>(b));
  }
  MlpClassifier model({2, 16, 2}, 11);
  TrainConfig cfg;
  cfg.epochs = 60;
  cfg.adam.lr = 5e-3;
  const auto report = model.train(x, y, cfg);
  EXPECT_GT(report.final_train_accuracy, 0.95);
}

TEST(Mlp, PredictionIsProbability) {
  MlpClassifier model({3, 4, 2}, 1);
  const double p = model.predict_real_probability({0.1, 0.2, 0.3});
  EXPECT_GE(p, 0.0);
  EXPECT_LE(p, 1.0);
}

TEST(Mlp, DeterministicWithoutInputNoise) {
  MlpClassifier model({3, 4, 2}, 1);
  const std::vector<double> x = {0.5, -0.5, 1.0};
  EXPECT_EQ(model.predict_real_probability(x),
            model.predict_real_probability(x));
}

TEST(Metrics, AccuracyKnownCase) {
  EXPECT_NEAR(accuracy({0.9, 0.2, 0.7, 0.4}, {1, 0, 0, 1}), 0.5, 1e-12);
}

TEST(Metrics, AucPerfectAndInverted) {
  EXPECT_NEAR(roc_auc({0.1, 0.2, 0.8, 0.9}, {0, 0, 1, 1}), 1.0, 1e-12);
  EXPECT_NEAR(roc_auc({0.9, 0.8, 0.2, 0.1}, {0, 0, 1, 1}), 0.0, 1e-12);
}

TEST(Metrics, AucRandomScoresNearHalf) {
  util::Rng rng(9);
  std::vector<double> scores;
  std::vector<int> labels;
  for (int i = 0; i < 20000; ++i) {
    scores.push_back(rng.uniform());
    labels.push_back(rng.bernoulli(0.5) ? 1 : 0);
  }
  EXPECT_NEAR(roc_auc(scores, labels), 0.5, 0.02);
}

TEST(Metrics, AucHandlesTies) {
  // All scores identical -> AUC is exactly 0.5 by the tie convention.
  EXPECT_NEAR(roc_auc({0.5, 0.5, 0.5, 0.5}, {0, 1, 0, 1}), 0.5, 1e-12);
}

TEST(Metrics, AucNeedsBothClasses) {
  EXPECT_THROW(roc_auc({0.1, 0.2}, {1, 1}), std::invalid_argument);
}

TEST(Metrics, EceZeroForPerfectCalibration) {
  // Scores equal to empirical frequency in each bin.
  std::vector<double> scores;
  std::vector<int> labels;
  for (int i = 0; i < 1000; ++i) {
    scores.push_back(0.75);
    labels.push_back(i % 4 != 0 ? 1 : 0);  // 75% positive
  }
  EXPECT_NEAR(expected_calibration_error(scores, labels), 0.0, 1e-9);
}

TEST(Metrics, EceLargeForOverconfidence) {
  std::vector<double> scores(100, 0.99);
  std::vector<int> labels(100, 0);
  EXPECT_GT(expected_calibration_error(scores, labels), 0.9);
}

}  // namespace
}  // namespace diffserve::nn
