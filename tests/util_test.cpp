// Tests for util: RNG distributions, determinism, CSV, check macros.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "util/check.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"

namespace diffserve::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanAndVariance) {
  Rng rng(11);
  double sum = 0.0, sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    sum += u;
    sq += u * u;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.01);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.01);
}

TEST(Rng, UniformIntRangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo |= (v == 3);
    saw_hi |= (v == 7);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  double sum = 0.0, sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(2.0, 3.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(sq / n - mean * mean, 9.0, 0.2);
}

TEST(Rng, ExponentialMean) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, GammaMeanMatchesShapeTimesScale) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.gamma(3.0, 2.0);
  EXPECT_NEAR(sum / n, 6.0, 0.1);
}

TEST(Rng, GammaSmallShape) {
  Rng rng(23);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gamma(0.5, 1.0);
    EXPECT_GE(g, 0.0);
    sum += g;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, BetaInUnitIntervalWithCorrectMean) {
  Rng rng(29);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double b = rng.beta(2.0, 4.0);
    EXPECT_GE(b, 0.0);
    EXPECT_LE(b, 1.0);
    sum += b;
  }
  EXPECT_NEAR(sum / n, 2.0 / 6.0, 0.01);
}

TEST(Rng, PoissonMeanSmallAndLarge) {
  Rng rng(31);
  for (const double mean : {2.0, 50.0}) {
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
      sum += static_cast<double>(rng.poisson(mean));
    EXPECT_NEAR(sum / n, mean, mean * 0.05);
  }
}

TEST(Rng, PoissonZeroMean) {
  Rng rng(1);
  EXPECT_EQ(rng.poisson(0.0), 0);
}

TEST(Rng, BernoulliProbability) {
  Rng rng(37);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(42);
  Rng child = a.fork();
  // Child should not replay the parent's stream.
  Rng b(42);
  b.next();  // parent consumed one draw for the fork
  EXPECT_NE(child.next(), b.next());
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(7);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, InvalidArgumentsThrow) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform(2.0, 1.0), std::invalid_argument);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
  EXPECT_THROW(rng.gamma(-1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(rng.bernoulli(1.5), std::invalid_argument);
}

TEST(Check, RequireThrowsInvalidArgument) {
  EXPECT_THROW(DS_REQUIRE(false, "nope"), std::invalid_argument);
  EXPECT_NO_THROW(DS_REQUIRE(true, "fine"));
}

TEST(Check, CheckThrowsLogicError) {
  EXPECT_THROW(DS_CHECK(false, "invariant"), std::logic_error);
  EXPECT_NO_THROW(DS_CHECK(true, "fine"));
}

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = "/tmp/ds_csv_test.csv";
  {
    CsvWriter w(path, {"a", "b"});
    w.add_row(std::vector<double>{1.5, 2.0});
    w.add_row(std::vector<std::string>{"x", "y"});
    EXPECT_EQ(w.rows_written(), 2u);
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1.5,2");
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::remove(path.c_str());
}

TEST(Csv, RejectsWrongWidth) {
  const std::string path = "/tmp/ds_csv_test2.csv";
  CsvWriter w(path, {"a", "b"});
  EXPECT_THROW(w.add_row(std::vector<double>{1.0}), std::invalid_argument);
  std::remove(path.c_str());
}

TEST(Csv, FormatRoundTrips) {
  EXPECT_EQ(CsvWriter::format(0.5), "0.5");
  EXPECT_EQ(CsvWriter::format(3.0), "3");
}

}  // namespace
}  // namespace diffserve::util
