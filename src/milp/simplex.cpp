#include "milp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "util/check.hpp"

namespace diffserve::milp {

namespace {

// Dense standard-form tableau:
//   rows 0..m-1: constraints (A | rhs), rhs >= 0
//   basis[i]: column basic in row i
// Columns: 0..n_struct-1 structural (shifted originals), then slack /
// surplus, then artificial.
struct Tableau {
  std::size_t m = 0;                  // rows
  std::size_t n = 0;                  // columns excluding rhs
  std::vector<std::vector<double>> a; // m x (n + 1); last column is rhs
  std::vector<std::size_t> basis;     // size m
};

void pivot(Tableau& t, std::size_t row, std::size_t col) {
  auto& pr = t.a[row];
  const double pivot_val = pr[col];
  DS_CHECK(std::fabs(pivot_val) > 1e-12, "pivot on (near) zero element");
  const double inv = 1.0 / pivot_val;
  for (auto& v : pr) v *= inv;
  pr[col] = 1.0;  // exact
  for (std::size_t r = 0; r < t.m; ++r) {
    if (r == row) continue;
    auto& tr = t.a[r];
    const double factor = tr[col];
    if (factor == 0.0) continue;
    for (std::size_t c = 0; c <= t.n; ++c) tr[c] -= factor * pr[c];
    tr[col] = 0.0;  // exact
  }
  t.basis[row] = col;
}

// Reduced costs for objective `obj` (maximization) given the current basis:
// z_j - c_j computed via the basic objective coefficients.
// Returns (reduced costs, objective value).
std::pair<std::vector<double>, double> reduced_costs(
    const Tableau& t, const std::vector<double>& obj) {
  std::vector<double> rc(t.n);
  double z = 0.0;
  // y_i = objective coefficient of the basic variable in row i.
  std::vector<double> y(t.m);
  for (std::size_t i = 0; i < t.m; ++i) {
    y[i] = obj[t.basis[i]];
    z += y[i] * t.a[i][t.n];
  }
  for (std::size_t j = 0; j < t.n; ++j) {
    double zj = 0.0;
    for (std::size_t i = 0; i < t.m; ++i)
      if (y[i] != 0.0) zj += y[i] * t.a[i][j];
    rc[j] = zj - obj[j];
  }
  return {std::move(rc), z};
}

enum class IterResult { kOptimal, kUnbounded, kLimit };

// Primal simplex iterations maximizing `obj` from the current basis.
IterResult iterate(Tableau& t, const std::vector<double>& obj,
                   const SimplexOptions& opts, int& iters_used) {
  for (;;) {
    if (iters_used >= opts.max_iterations) return IterResult::kLimit;
    auto [rc, z] = reduced_costs(t, obj);
    (void)z;

    // Entering column: for maximization, any rc_j < -tol improves.
    std::size_t enter = t.n;
    if (iters_used < opts.bland_after) {
      double best = -opts.tol;
      for (std::size_t j = 0; j < t.n; ++j) {
        if (rc[j] < best) {
          best = rc[j];
          enter = j;
        }
      }
    } else {
      // Bland's rule: smallest index with negative reduced cost.
      for (std::size_t j = 0; j < t.n; ++j) {
        if (rc[j] < -opts.tol) {
          enter = j;
          break;
        }
      }
    }
    if (enter == t.n) return IterResult::kOptimal;

    // Leaving row: minimum ratio rhs / a[r][enter] over positive entries.
    std::size_t leave = t.m;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < t.m; ++r) {
      const double coef = t.a[r][enter];
      if (coef > opts.tol) {
        const double ratio = t.a[r][t.n] / coef;
        if (ratio < best_ratio - 1e-12 ||
            (std::fabs(ratio - best_ratio) <= 1e-12 && leave < t.m &&
             t.basis[r] < t.basis[leave])) {
          best_ratio = ratio;
          leave = r;
        }
      }
    }
    if (leave == t.m) return IterResult::kUnbounded;

    pivot(t, leave, enter);
    ++iters_used;
  }
}

}  // namespace

Solution solve_lp(const Problem& p, const SimplexOptions& opts) {
  const auto& vars = p.variables();
  const std::size_t n_struct = vars.size();
  DS_REQUIRE(n_struct > 0, "LP with no variables");

  // Standard-form conversion. Shift each variable by its lower bound so all
  // structural variables are >= 0. Finite upper bounds become extra rows.
  std::vector<double> shift(n_struct);
  for (std::size_t j = 0; j < n_struct; ++j) {
    DS_REQUIRE(vars[j].lower > -kInfinity,
               "free variables not supported: " + vars[j].name);
    shift[j] = vars[j].lower;
  }

  struct Row {
    std::vector<double> coeff;  // dense over structural vars
    Sense sense;
    double rhs;
  };
  std::vector<Row> rows;
  for (const auto& c : p.constraints()) {
    Row row{std::vector<double>(n_struct, 0.0), c.sense, c.rhs};
    for (const auto& [idx, coeff] : c.terms) {
      row.coeff[static_cast<std::size_t>(idx)] += coeff;
      row.rhs -= coeff * shift[static_cast<std::size_t>(idx)];
    }
    rows.push_back(std::move(row));
  }
  for (std::size_t j = 0; j < n_struct; ++j) {
    if (vars[j].upper < kInfinity) {
      Row row{std::vector<double>(n_struct, 0.0), Sense::kLe,
              vars[j].upper - shift[j]};
      row.coeff[j] = 1.0;
      rows.push_back(std::move(row));
    }
  }

  // Flip rows to get rhs >= 0.
  for (auto& row : rows) {
    if (row.rhs < 0.0) {
      for (auto& v : row.coeff) v = -v;
      row.rhs = -row.rhs;
      if (row.sense == Sense::kLe) row.sense = Sense::kGe;
      else if (row.sense == Sense::kGe) row.sense = Sense::kLe;
    }
  }

  const std::size_t m = rows.size();
  // Column layout: structural | slack/surplus (one per Le/Ge row) |
  // artificial (one per Ge/Eq row).
  std::size_t n_slack = 0, n_artificial = 0;
  for (const auto& row : rows) {
    if (row.sense != Sense::kEq) ++n_slack;
    if (row.sense != Sense::kLe) ++n_artificial;
  }
  const std::size_t n_total = n_struct + n_slack + n_artificial;

  Tableau t;
  t.m = m;
  t.n = n_total;
  t.a.assign(m, std::vector<double>(n_total + 1, 0.0));
  t.basis.assign(m, 0);

  std::size_t slack_col = n_struct;
  std::size_t art_col = n_struct + n_slack;
  std::vector<bool> is_artificial(n_total, false);
  for (std::size_t r = 0; r < m; ++r) {
    const auto& row = rows[r];
    for (std::size_t j = 0; j < n_struct; ++j) t.a[r][j] = row.coeff[j];
    t.a[r][n_total] = row.rhs;
    switch (row.sense) {
      case Sense::kLe:
        t.a[r][slack_col] = 1.0;
        t.basis[r] = slack_col++;
        break;
      case Sense::kGe:
        t.a[r][slack_col] = -1.0;
        ++slack_col;
        t.a[r][art_col] = 1.0;
        is_artificial[art_col] = true;
        t.basis[r] = art_col++;
        break;
      case Sense::kEq:
        t.a[r][art_col] = 1.0;
        is_artificial[art_col] = true;
        t.basis[r] = art_col++;
        break;
    }
  }

  int iters = 0;

  // Phase 1: maximize -(sum of artificials); feasible iff optimum is 0.
  if (n_artificial > 0) {
    std::vector<double> phase1_obj(n_total, 0.0);
    for (std::size_t j = 0; j < n_total; ++j)
      if (is_artificial[j]) phase1_obj[j] = -1.0;
    const auto res = iterate(t, phase1_obj, opts, iters);
    if (res == IterResult::kLimit) return {SolveStatus::kLimit, 0.0, {}};
    DS_CHECK(res != IterResult::kUnbounded, "phase 1 cannot be unbounded");
    double art_sum = 0.0;
    for (std::size_t r = 0; r < m; ++r)
      if (is_artificial[t.basis[r]]) art_sum += t.a[r][n_total];
    if (art_sum > 1e-7) return {SolveStatus::kInfeasible, 0.0, {}};
    // Pivot any artificial still basic (at zero) out of the basis.
    for (std::size_t r = 0; r < m; ++r) {
      if (!is_artificial[t.basis[r]]) continue;
      std::size_t enter = n_total;
      for (std::size_t j = 0; j < n_struct + n_slack; ++j) {
        if (std::fabs(t.a[r][j]) > 1e-9) {
          enter = j;
          break;
        }
      }
      if (enter < n_total) pivot(t, r, enter);
      // else: the row is all zeros — redundant constraint; harmless.
    }
  }

  // Phase 2: maximize the true objective over the shifted variables.
  // (Artificial columns are forbidden by pricing them prohibitively.)
  std::vector<double> obj(n_total, 0.0);
  for (std::size_t j = 0; j < n_struct; ++j) obj[j] = vars[j].objective;
  for (std::size_t j = 0; j < n_total; ++j)
    if (is_artificial[j]) obj[j] = -1e12;
  const auto res = iterate(t, obj, opts, iters);
  if (res == IterResult::kLimit) return {SolveStatus::kLimit, 0.0, {}};
  if (res == IterResult::kUnbounded) return {SolveStatus::kUnbounded, 0.0, {}};

  Solution sol;
  sol.status = SolveStatus::kOptimal;
  sol.values.assign(n_struct, 0.0);
  for (std::size_t r = 0; r < m; ++r)
    if (t.basis[r] < n_struct) sol.values[t.basis[r]] = t.a[r][n_total];
  for (std::size_t j = 0; j < n_struct; ++j) {
    sol.values[j] += shift[j];
    // Clean tiny negatives from roundoff.
    if (std::fabs(sol.values[j] - vars[j].lower) < 1e-9)
      sol.values[j] = vars[j].lower;
  }
  sol.objective = p.objective_value(sol.values);
  return sol;
}

}  // namespace diffserve::milp
