#!/usr/bin/env python3
"""Determinism-contract linter for the DiffServe serving stack.

The reproduction's core guarantee is that serving *decisions* are a pure
function of (trace, seed, config): the DES and the threaded runtime must
produce bit-identical routing, batching, and allocation choices, and a
cluster run must replay exactly. That contract is easy to break with one
innocent-looking line — a wall-clock read feeding a decision, an ambient
RNG, or an iteration order that depends on pointer values or hash
seeding. This linter scans the decision-path directories for the known
footguns:

  wall-clock                  std::chrono wall/monotonic clock reads (or
                              C time APIs) outside util::TraceClock. Time
                              in decision code must come from the engine
                              clock, which both runtimes advance
                              identically.
  ambient-random              std::rand/srand/std::random_device. All
                              randomness must flow from util::Rng seeded
                              by config.
  unordered-iteration         range-for over a std::unordered_map/set.
                              Iteration order is unspecified and varies
                              across libstdc++ versions and hash seeds,
                              so anything order-sensitive downstream
                              diverges.
  pointer-keyed-ordered       std::map/std::set keyed by a pointer type.
                              Ordered-by-address is allocation-order
                              dependent, which ASLR randomizes.
  float-accumulation-unordered  `+=` accumulation inside an
                              unordered-container range-for. Floating
                              addition does not commute, so even an
                              order-insensitive *set* of contributions
                              yields run-dependent sums.

Escape hatch — a justified annotation on the offending line or the line
directly above it:

    // ds-lint: allow(wall-clock): watchdog timeout, never feeds a decision

The reason after the second colon is mandatory; a bare allow is itself
reported (rule `bad-allow`). Unknown rule names in an allow are also
reported, so annotations cannot rot silently.

Usage:
    scripts/check_determinism.py            # lint the decision-path dirs
    scripts/check_determinism.py PATH...    # lint specific files/dirs
    scripts/check_determinism.py --self-test
        Run against scripts/lint_fixtures/: every *_violation.cc fixture
        must trip exactly its named rule, and allowed_clean.cc must pass.

Exit status 0 = clean, 1 = findings, 2 = usage/self-test harness error.
Stdlib only; no compiler needed (this runs before the build in CI).
"""

import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Decision-path directories: everything that computes what the system
# *does* (routing, caching, batching, allocation, cluster control).
# Telemetry-only code (bench/, tools/) and infrastructure (net/, util/)
# are out of scope — wall clocks are legitimate there.
DEFAULT_DIRS = [
    "src/engine",
    "src/cache",
    "src/serving",
    "src/cluster",
    "src/control",
]

SOURCE_EXTS = (".cpp", ".hpp", ".cc", ".h")

ALLOW_RE = re.compile(
    r"//\s*ds-lint:\s*allow\(\s*(?P<rule>[a-z-]+)\s*\)\s*(?::\s*(?P<reason>.*\S)?)?"
)

# --- per-line pattern rules -------------------------------------------------

WALL_CLOCK_RE = re.compile(
    r"(?:steady_clock|system_clock|high_resolution_clock)\s*::\s*now"
    r"|\bgettimeofday\s*\("
    r"|\bclock_gettime\s*\("
    r"|\bstd::time\s*\("
    r"|(?<![\w:])time\s*\(\s*(?:nullptr|NULL|0)\s*\)"
)

AMBIENT_RANDOM_RE = re.compile(
    r"\bstd::rand\b|\bstd::srand\b|(?<![\w:])srand\s*\(|\brandom_device\b"
)

# std::map/std::set whose first template argument is a pointer type:
# `std::map<Foo*, ...>`, `std::set<const Bar *>`. The first-argument slice
# deliberately excludes ',' '<' '>' so smart pointers and nested templates
# (std::map<int, Foo*>) don't match.
POINTER_KEYED_RE = re.compile(r"\bstd::(?:multi)?(?:map|set)\s*<\s*[^,<>]*\*\s*[,>]")

UNORDERED_DECL_RE = re.compile(
    r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<[^;]*>\s*[&*]?\s*"
    r"(\w+)\s*[;={(\[),]"
)

FLOAT_ACCUM_RE = re.compile(r"[\w\]\.\->]+\s*\+=")

STRING_RE = re.compile(r'"(?:[^"\\]|\\.)*"' + r"|'(?:[^'\\]|\\.)'")


class Finding:
    def __init__(self, path, line_no, rule, message):
        self.path = path
        self.line_no = line_no
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line_no}: [{self.rule}] {self.message}"


KNOWN_RULES = {
    "wall-clock",
    "ambient-random",
    "unordered-iteration",
    "pointer-keyed-ordered",
    "float-accumulation-unordered",
}


def split_code_comment(line, in_block):
    """Return (code, line_comment, in_block) with strings blanked.

    `code` is the executable portion with string literals replaced by
    `""` so patterns never match inside log text; `line_comment` is the
    text of a trailing `//` comment (where ds-lint annotations live).
    Block comments are elided from code and never carry annotations.
    """
    code_parts = []
    comment = ""
    i = 0
    line = STRING_RE.sub('""', line)
    n = len(line)
    while i < n:
        if in_block:
            end = line.find("*/", i)
            if end < 0:
                return "".join(code_parts), comment, True
            i = end + 2
            in_block = False
            continue
        start_line = line.find("//", i)
        start_block = line.find("/*", i)
        if start_line >= 0 and (start_block < 0 or start_line < start_block):
            code_parts.append(line[i:start_line])
            comment = line[start_line:]
            break
        if start_block >= 0:
            code_parts.append(line[i:start_block])
            i = start_block + 2
            in_block = True
            continue
        code_parts.append(line[i:])
        break
    return "".join(code_parts), comment, in_block


def parse_allows(comment, path, line_no, findings):
    """Extract allow annotations from a comment; report malformed ones."""
    allows = set()
    for m in ALLOW_RE.finditer(comment):
        rule, reason = m.group("rule"), m.group("reason")
        if rule not in KNOWN_RULES:
            findings.append(
                Finding(path, line_no, "bad-allow", f"unknown rule '{rule}' in ds-lint allow")
            )
            continue
        if not reason:
            findings.append(
                Finding(
                    path,
                    line_no,
                    "bad-allow",
                    f"ds-lint allow({rule}) needs a justification after ':'",
                )
            )
            continue
        allows.add(rule)
    return allows


def collect_unordered_names(lines):
    names = set()
    in_block = False
    for raw in lines:
        code, _, in_block = split_code_comment(raw, in_block)
        for m in UNORDERED_DECL_RE.finditer(code):
            names.add(m.group(1))
    return names


def sibling_header_lines(path):
    """Declarations often live in the paired header; fold them in so a
    .cpp iterating a member declared in its .hpp is still caught."""
    stem, ext = os.path.splitext(path)
    if ext not in (".cpp", ".cc"):
        return []
    for hext in (".hpp", ".h"):
        header = stem + hext
        if os.path.isfile(header):
            with open(header, encoding="utf-8", errors="replace") as f:
                return f.read().splitlines()
    return []


def find_range_fors(code):
    """Yield the range expression of each range-based `for` on this line.

    A regex can't find the for-clause's closing paren once the range
    expression contains calls, so match parens by hand: the range is the
    text between the last depth-1 single `:` and the paren that closes
    the clause. A depth-1 `;` means a classic three-clause for — skip it.
    """
    out = []
    for m in re.finditer(r"\bfor\s*\(", code):
        i = m.end()
        depth = 1
        colon = -1
        classic = False
        while i < len(code) and depth:
            c = code[i]
            if c == "(":
                depth += 1
            elif c == ")":
                depth -= 1
            elif c == ";" and depth == 1:
                classic = True
                break
            elif (
                c == ":"
                and depth == 1
                and (i == 0 or code[i - 1] != ":")
                and (i + 1 >= len(code) or code[i + 1] != ":")
            ):
                colon = i
            i += 1
        if depth == 0 and colon >= 0 and not classic:
            out.append(code[colon + 1 : i - 1])
    return out


def range_expr_is_unordered(expr, unordered_names):
    expr = expr.strip()
    if "unordered_" in expr:
        return True
    # Resolve `foo_`, `x.foo_`, `p->foo_` down to the final identifier.
    m = re.search(r"(\w+)\s*(?:\(\s*\))?\s*$", expr)
    return bool(m) and m.group(1) in unordered_names


def lint_file(path, rel):
    with open(path, encoding="utf-8", errors="replace") as f:
        lines = f.read().splitlines()

    unordered_names = collect_unordered_names(lines)
    unordered_names |= collect_unordered_names(sibling_header_lines(path))

    findings = []
    # allow annotations on their own line apply to the next code line
    pending_allows = set()
    in_block = False
    # stack of brace depths at which an unordered range-for body began
    unordered_loop_depths = []
    depth = 0

    for idx, raw in enumerate(lines, start=1):
        code, comment, in_block = split_code_comment(raw, in_block)
        allows = parse_allows(comment, rel, idx, findings)
        if not code.strip():
            # comment-only line: its allows carry to the next code line
            pending_allows |= allows
            continue
        active = allows | pending_allows
        pending_allows = set()

        line_findings = []

        if WALL_CLOCK_RE.search(code):
            line_findings.append(
                (
                    "wall-clock",
                    "wall-clock read in decision-path code; use the engine's "
                    "util::TraceClock-derived time",
                )
            )
        if AMBIENT_RANDOM_RE.search(code):
            line_findings.append(
                (
                    "ambient-random",
                    "ambient randomness; draw from a config-seeded util::Rng",
                )
            )
        if POINTER_KEYED_RE.search(code):
            line_findings.append(
                (
                    "pointer-keyed-ordered",
                    "ordered container keyed by pointer; iteration order "
                    "depends on allocation addresses",
                )
            )

        for range_expr in find_range_fors(code):
            if range_expr_is_unordered(range_expr, unordered_names):
                line_findings.append(
                    (
                        "unordered-iteration",
                        "range-for over an unordered container; order is "
                        "unspecified — iterate a sorted view or an ordered "
                        "container",
                    )
                )
                unordered_loop_depths.append(depth)

        if unordered_loop_depths and FLOAT_ACCUM_RE.search(code) and "+=" in code:
            line_findings.append(
                (
                    "float-accumulation-unordered",
                    "accumulation inside unordered iteration; float addition "
                    "does not commute, so the sum is order-dependent",
                )
            )

        for rule, msg in line_findings:
            if rule not in active:
                findings.append(Finding(rel, idx, rule, msg))

        # Track brace depth to know when unordered loop bodies end. A
        # braceless single-statement body closes on the first line that
        # doesn't open a brace — approximate by popping when depth
        # returns to the loop's level after having gone deeper, or
        # immediately if the loop line itself is self-contained.
        opens = code.count("{")
        closes = code.count("}")
        depth += opens - closes
        while unordered_loop_depths and depth <= unordered_loop_depths[-1] and (
            closes > 0 or opens == 0
        ):
            unordered_loop_depths.pop()

    return findings


def iter_sources(paths):
    for p in paths:
        if os.path.isfile(p):
            yield p
        else:
            for root, _, files in os.walk(p):
                for name in sorted(files):
                    if name.endswith(SOURCE_EXTS):
                        yield os.path.join(root, name)


def run_lint(paths):
    findings = []
    for path in iter_sources(paths):
        rel = os.path.relpath(path, REPO_ROOT)
        findings.extend(lint_file(path, rel))
    return findings


def self_test():
    """Fixtures are the linter's own regression suite: every rule must
    still fire on its seeded violation, and the annotated file must pass."""
    fixture_dir = os.path.join(REPO_ROOT, "scripts", "lint_fixtures")
    if not os.path.isdir(fixture_dir):
        print(f"self-test: missing fixture dir {fixture_dir}", file=sys.stderr)
        return 2
    expected = {
        "wall_clock_violation.cc": "wall-clock",
        "ambient_random_violation.cc": "ambient-random",
        "unordered_iteration_violation.cc": "unordered-iteration",
        "pointer_keyed_violation.cc": "pointer-keyed-ordered",
        "float_accumulation_violation.cc": "float-accumulation-unordered",
        "bad_allow_violation.cc": "bad-allow",
    }
    failures = []
    for name, rule in sorted(expected.items()):
        path = os.path.join(fixture_dir, name)
        if not os.path.isfile(path):
            failures.append(f"missing fixture {name}")
            continue
        rules = {f.rule for f in lint_file(path, name)}
        if rule not in rules:
            failures.append(f"{name}: expected rule '{rule}' to fire, got {sorted(rules)}")
    clean = os.path.join(fixture_dir, "allowed_clean.cc")
    if not os.path.isfile(clean):
        failures.append("missing fixture allowed_clean.cc")
    else:
        leftover = lint_file(clean, "allowed_clean.cc")
        if leftover:
            failures.append(
                "allowed_clean.cc: annotated violations still reported: "
                + "; ".join(str(f) for f in leftover)
            )
    if failures:
        for f in failures:
            print(f"self-test FAIL: {f}", file=sys.stderr)
        return 2
    print(f"self-test OK: {len(expected)} violation fixtures fire, annotated file passes")
    return 0


def main(argv):
    if "--self-test" in argv:
        return self_test()
    targets = [os.path.join(REPO_ROOT, d) for d in (argv or DEFAULT_DIRS)]
    for t in targets:
        if not os.path.exists(t):
            print(f"no such path: {t}", file=sys.stderr)
            return 2
    findings = run_lint(targets)
    for f in findings:
        print(f)
    if findings:
        print(
            f"\n{len(findings)} determinism-contract violation(s). Fix them or, "
            "if the read provably never feeds a serving decision, annotate:\n"
            "  // ds-lint: allow(<rule>): <why this cannot affect decisions>",
            file=sys.stderr,
        )
        return 1
    print("determinism lint clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
