#include "discriminator/deferral_profile.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace diffserve::discriminator {

DeferralProfile::DeferralProfile(std::vector<double> confidences)
    : sorted_(std::move(confidences)) {
  DS_REQUIRE(sorted_.size() >= 10, "too few samples for a deferral profile");
  for (double c : sorted_)
    DS_REQUIRE(c >= 0.0 && c <= 1.0, "confidence outside [0,1]");
  std::sort(sorted_.begin(), sorted_.end());
}

DeferralProfile DeferralProfile::profile(const quality::Workload& workload,
                                         const Discriminator& disc,
                                         int light_tier,
                                         std::size_t n_profile) {
  const std::size_t n = std::min<std::size_t>(n_profile, workload.size());
  std::vector<double> conf;
  conf.reserve(n);
  for (quality::QueryId q = 0; q < n; ++q)
    conf.push_back(disc.confidence(workload.generated_feature(q, light_tier)));
  return DeferralProfile(std::move(conf));
}

double DeferralProfile::fraction_deferred(double threshold) const {
  // Deferred iff confidence < t (strict, per §3.2: meeting the threshold
  // returns the image).
  const auto it =
      std::lower_bound(sorted_.begin(), sorted_.end(), threshold);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double DeferralProfile::threshold_for_fraction(double target_fraction) const {
  DS_REQUIRE(target_fraction >= 0.0 && target_fraction <= 1.0,
             "fraction outside [0,1]");
  // Largest t with f(t) <= target: f jumps at each sample, so the answer
  // is the sample at index floor(target * n) (or 1.0 past the end).
  const auto idx = static_cast<std::size_t>(
      target_fraction * static_cast<double>(sorted_.size()));
  if (idx >= sorted_.size()) return 1.0;
  return sorted_[idx];
}

std::vector<DeferralProfile::GridPoint> DeferralProfile::grid(
    std::size_t n, double max_fraction) const {
  DS_REQUIRE(n >= 2, "grid needs at least two points");
  DS_REQUIRE(max_fraction > 0.0 && max_fraction <= 1.0,
             "max_fraction outside (0,1]");
  std::vector<GridPoint> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double target = max_fraction * static_cast<double>(i) /
                          static_cast<double>(n - 1);
    const double t = threshold_for_fraction(target);
    const double f = fraction_deferred(t);
    if (!out.empty() && std::fabs(out.back().threshold - t) < 1e-12) continue;
    out.push_back({t, f});
  }
  return out;
}

OnlineDeferralProfile::OnlineDeferralProfile(DeferralProfile offline,
                                             std::size_t window_capacity,
                                             std::size_t min_samples)
    : offline_(std::move(offline)),
      ring_(window_capacity),
      min_samples_(min_samples) {
  DS_REQUIRE(window_capacity >= min_samples,
             "window capacity below activation threshold");
}

void OnlineDeferralProfile::observe(double confidence) {
  DS_REQUIRE(confidence >= 0.0 && confidence <= 1.0,
             "confidence outside [0,1]");
  ring_[head_] = confidence;
  head_ = (head_ + 1) % ring_.size();
  if (count_ < ring_.size()) ++count_;
}

DeferralProfile OnlineDeferralProfile::current() const {
  if (count_ < min_samples_) return offline_;
  std::vector<double> window(ring_.begin(),
                             ring_.begin() + static_cast<std::ptrdiff_t>(
                                                 std::min(count_, ring_.size())));
  return DeferralProfile(std::move(window));
}

double OnlineDeferralProfile::fraction_deferred(double threshold) const {
  return current().fraction_deferred(threshold);
}

std::vector<DeferralProfile::GridPoint> OnlineDeferralProfile::grid(
    std::size_t n, double max_fraction) const {
  return current().grid(n, max_fraction);
}

}  // namespace diffserve::discriminator
