// Threaded "testbed" runtime.
//
// The paper validates its simulator against a 16-GPU cluster testbed whose
// artifact also supports *simulated execution* of the diffusion models
// (sleeping for the profiled latency instead of running the GPU kernels,
// Appendix A.5). This module is that testbed: a ThreadedBackend — real
// timer and worker threads timed by the wall clock (util::TraceClock) —
// plugged under the same engine::CascadeEngine and control::Controller
// that drive the discrete-event simulator. Because routing, deferral,
// batching, reconfiguration, and metrics are the engine's single policy
// implementation, the §4.3 simulator-vs-testbed fidelity comparison
// (0.56% FID, 1.1% SLO difference in the paper) is reproduced by running
// the same trace through both backends and diffing the results.
//
// ThreadedBackend is exported here (not hidden in the .cpp) so tests can
// assemble custom engines over real threads — e.g. the randomized
// cascade-chain invariant suite applies arbitrary plan sequences against
// arbitrary chain depths on this backend.
//
// `time_scale` compresses wall time: a trace second lasts 1/time_scale
// wall seconds and every sleep shrinks accordingly. Latencies are recorded
// in trace seconds, so results are directly comparable with the DES.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cache/approx_cache.hpp"
#include "control/allocator.hpp"
#include "core/environment.hpp"
#include "engine/backend.hpp"
#include "trace/arrivals.hpp"
#include "trace/prompt_mix.hpp"
#include "trace/rate_trace.hpp"
#include "util/trace_clock.hpp"

namespace diffserve::runtime {

/// ExecutionBackend over real threads and the compressed wall clock: a
/// timer thread delivers deferred callbacks, one executor thread per
/// worker sleeps for each batch's profiled latency, a dedicated control
/// thread runs offloaded work (controller ticks with their allocator
/// solves) so a slow solve never delays timer delivery, and the guard is
/// a real mutex serializing all engine state.
class ThreadedBackend final : public engine::ExecutionBackend {
 public:
  ThreadedBackend(const util::TraceClock& clock, int workers);
  ~ThreadedBackend() override;

  void start();
  /// Joins all threads; in-flight batches (including follow-on batches
  /// they trigger) finish and deliver their completions first. Idempotent.
  void stop();

  double now() const override { return clock_.now(); }
  std::unique_lock<std::mutex> guard() override {
    return std::unique_lock<std::mutex>(mu_);
  }
  engine::TimerHandle defer(double delay_seconds,
                            std::function<void()> fn) override;
  bool cancel(engine::TimerHandle h) override;
  void execute(int worker_id, double exec_seconds,
               std::function<void()> done) override;
  /// Enqueue `fn` on the control thread (never inline): long allocator
  /// solves run there while batch-launch timers keep firing. Dropped if
  /// the backend is stopping.
  void offload(std::function<void()> fn) override;

 private:
  struct TimerEntry {
    double at;
    std::uint64_t id;
  };
  struct TimerCompare {
    bool operator()(const TimerEntry& a, const TimerEntry& b) const {
      return a.at > b.at;  // min-heap on due time
    }
  };
  struct Executor {
    std::mutex mu;
    std::condition_variable cv;
    bool has_job = false;
    bool busy = false;  ///< picked up and sleeping/delivering (for stop())
    double due = 0.0;   ///< absolute trace time the batch finishes
    std::function<void()> done;
    std::thread thread;
  };

  void timer_main();
  void executor_main(Executor& ex);
  void control_main();

  const util::TraceClock& clock_;
  std::mutex mu_;  ///< the engine guard

  std::mutex timer_mu_;
  std::condition_variable timer_cv_;
  std::priority_queue<TimerEntry, std::vector<TimerEntry>, TimerCompare>
      heap_;
  std::unordered_map<std::uint64_t, std::function<void()>> fns_;
  std::uint64_t next_id_ = 1;
  std::thread timer_thread_;

  std::vector<std::unique_ptr<Executor>> executors_;

  /// Offloaded control work (see offload()).
  std::mutex control_mu_;
  std::condition_variable control_cv_;
  std::deque<std::function<void()>> control_jobs_;
  std::thread control_thread_;
  /// True while the control thread is inside a job; stop()'s quiesce
  /// waits on it like it does for the timer thread.
  std::atomic<bool> control_busy_{false};

  std::atomic<bool> stop_{false};
  /// True while the timer thread is inside a callback (set under
  /// timer_mu_ at extraction); stop()'s quiesce waits on it so a
  /// mid-flight callback's batch dispatch is never discarded.
  std::atomic<bool> timer_busy_{false};
};

struct RuntimeConfig {
  int total_workers = 8;
  /// Negative = cascade default.
  double slo_seconds = -1.0;
  /// Wall-clock compression: 30 = a 300 s trace takes 10 s to replay.
  double time_scale = 30.0;
  double control_period = 5.0;       ///< trace seconds
  double heavy_reserve_factor = 1.25;
  double max_deferral_fraction = 0.55;
  double over_provision = 1.05;
  double model_load_delay = 1.0;     ///< trace seconds
  /// Batch timers are armed this much wall time early (scaled into trace
  /// seconds by time_scale) to absorb OS scheduling jitter.
  double launch_slack_wall_seconds = 0.004;
  std::uint64_t arrival_seed = 1;
  trace::ArrivalConfig arrivals;
  /// Forwarded into the engine config: the approximate prompt-reuse cache
  /// and the prompt popularity model (defaults keep both off).
  cache::CacheConfig cache;
  trace::PromptMixConfig prompt_mix;
};

struct RuntimeResult {
  double overall_fid = 0.0;
  double violation_ratio = 0.0;
  double mean_latency = 0.0;   ///< trace seconds
  std::size_t submitted = 0;
  std::size_t completed = 0;
  std::size_t dropped = 0;
  double light_served_fraction = 0.0;
  /// Completed-query share per chain stage (size = chain depth).
  std::vector<double> stage_served_fraction;
  std::size_t reconfigurations = 0;
  /// Prompt-reuse cache probe ratios (0 when the cache is disabled).
  double cache_hit_ratio = 0.0;
  double cache_exact_hit_ratio = 0.0;
  /// Cache maintenance depth: mean LSH buckets probed per lookup (0 when
  /// unindexed) and lazy-eviction-heap compactions over the run.
  double cache_mean_probed_cells = 0.0;
  std::uint64_t cache_heap_compactions = 0;
};

/// Replay `trace` through the threaded runtime with the given allocation
/// policy. Blocks until the trace finishes and the pipeline drains. Works
/// for any chain depth the environment carries.
RuntimeResult run_threaded(const core::CascadeEnvironment& env,
                           control::Allocator& allocator,
                           const trace::RateTrace& trace,
                           const RuntimeConfig& cfg);

}  // namespace diffserve::runtime
